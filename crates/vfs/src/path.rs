//! Path parsing and validation.
//!
//! Paths in this workspace are absolute, `/`-separated, and contain no `.` or
//! `..` components (the original ArckFS LibFS resolves paths the same way:
//! component-by-component from the root inode). Names are limited to
//! [`MAX_NAME_LEN`] bytes, matching the fixed-size dentry layout in
//! persistent memory.

use crate::error::{FsError, FsResult};

/// Maximum length in bytes of a single path component, matching the on-PM
/// dentry layout (`DENTRY_NAME_CAP` in the `arckfs` crate).
pub const MAX_NAME_LEN: usize = 255;

/// Validate a single path component.
///
/// A valid name is non-empty, at most [`MAX_NAME_LEN`] bytes, contains no
/// `/` or NUL, and is not `.` or `..`.
pub fn validate_name(name: &str) -> FsResult<()> {
    if name.is_empty() {
        return Err(FsError::InvalidPath("empty name".into()));
    }
    if name.len() > MAX_NAME_LEN {
        return Err(FsError::NameTooLong);
    }
    if name == "." || name == ".." {
        return Err(FsError::InvalidPath(format!("reserved name: {name}")));
    }
    if name.bytes().any(|b| b == b'/' || b == 0) {
        return Err(FsError::InvalidPath(format!(
            "illegal byte in name: {name}"
        )));
    }
    Ok(())
}

/// Split an absolute path into validated components.
///
/// `"/"` yields an empty component list (the root itself). Repeated slashes
/// and a trailing slash are tolerated, as in POSIX.
pub fn components(path: &str) -> FsResult<Vec<&str>> {
    if !path.starts_with('/') {
        return Err(FsError::InvalidPath(format!("not absolute: {path}")));
    }
    let mut out = Vec::new();
    for comp in path.split('/') {
        if comp.is_empty() {
            continue;
        }
        validate_name(comp)?;
        out.push(comp);
    }
    Ok(out)
}

/// Split a path into `(parent_components, final_name)`.
///
/// Fails for the root path, which has no parent.
pub fn split_parent(path: &str) -> FsResult<(Vec<&str>, &str)> {
    let mut comps = components(path)?;
    match comps.pop() {
        Some(name) => Ok((comps, name)),
        None => Err(FsError::InvalidPath("root has no parent".into())),
    }
}

/// Join a parent path and a child name into an absolute path string.
pub fn join(parent: &str, name: &str) -> String {
    if parent == "/" {
        format!("/{name}")
    } else {
        format!("{}/{name}", parent.trim_end_matches('/'))
    }
}

/// True if `path` is exactly the root.
pub fn is_root(path: &str) -> bool {
    path.chars().all(|c| c == '/') && !path.is_empty()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn components_basic() {
        assert_eq!(components("/a/b/c").unwrap(), vec!["a", "b", "c"]);
        assert_eq!(components("/").unwrap(), Vec::<&str>::new());
        assert_eq!(components("//a//b/").unwrap(), vec!["a", "b"]);
    }

    #[test]
    fn components_rejects_relative() {
        assert!(matches!(components("a/b"), Err(FsError::InvalidPath(_))));
    }

    #[test]
    fn components_rejects_dotdot() {
        assert!(components("/a/../b").is_err());
        assert!(components("/a/./b").is_err());
    }

    #[test]
    fn name_validation() {
        assert!(validate_name("hello.txt").is_ok());
        assert!(validate_name("").is_err());
        assert!(matches!(
            validate_name(&"x".repeat(MAX_NAME_LEN + 1)),
            Err(FsError::NameTooLong)
        ));
        assert!(validate_name("a/b").is_err());
        assert!(validate_name("a\0b").is_err());
    }

    #[test]
    fn split_parent_works() {
        let (parent, name) = split_parent("/a/b/c").unwrap();
        assert_eq!(parent, vec!["a", "b"]);
        assert_eq!(name, "c");
        assert!(split_parent("/").is_err());
    }

    #[test]
    fn join_works() {
        assert_eq!(join("/", "a"), "/a");
        assert_eq!(join("/a", "b"), "/a/b");
        assert_eq!(join("/a/", "b"), "/a/b");
    }

    #[test]
    fn is_root_works() {
        assert!(is_root("/"));
        assert!(is_root("//"));
        assert!(!is_root("/a"));
    }
}
