#![warn(missing_docs)]

//! Common file-system interface for the ArckFS reproduction.
//!
//! Every file system in this workspace — ArckFS, ArckFS+, the
//! verify-every-operation userspace baseline, and the kernel-file-system
//! models — implements the [`FileSystem`] trait defined here, so the
//! benchmark harness (FxMark, Filebench, the LevelDB-like KV store, fio-style
//! data workloads) can drive any of them interchangeably.
//!
//! The trait is deliberately close to the POSIX surface the original TRIO
//! artifact intercepts: positional reads and writes (`pread`/`pwrite`-style),
//! path-based metadata operations, and an `fsync` that ArckFS-class systems
//! may implement as a no-op because every operation persists synchronously.

pub mod error;
pub mod path;

use std::fmt;

pub use error::{FaultKind, FsError, FsResult};

/// A file descriptor handle returned by [`FileSystem::open`] and
/// [`FileSystem::create`].
///
/// Handles are plain integers so they can be passed freely between threads;
/// each file system maintains its own descriptor table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Fd(pub u64);

impl fmt::Display for Fd {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "fd{}", self.0)
    }
}

/// Flags accepted by [`FileSystem::open`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct OpenFlags {
    /// Open for reading.
    pub read: bool,
    /// Open for writing.
    pub write: bool,
    /// Create the file if it does not exist.
    pub create: bool,
    /// Truncate the file to zero length on open.
    pub truncate: bool,
}

impl OpenFlags {
    /// `O_RDONLY`.
    pub const RDONLY: OpenFlags = OpenFlags {
        read: true,
        write: false,
        create: false,
        truncate: false,
    };
    /// `O_WRONLY`.
    pub const WRONLY: OpenFlags = OpenFlags {
        read: false,
        write: true,
        create: false,
        truncate: false,
    };
    /// `O_RDWR`.
    pub const RDWR: OpenFlags = OpenFlags {
        read: true,
        write: true,
        create: false,
        truncate: false,
    };
    /// `O_RDWR | O_CREAT`.
    pub const CREATE: OpenFlags = OpenFlags {
        read: true,
        write: true,
        create: true,
        truncate: false,
    };
    /// `O_RDWR | O_CREAT | O_TRUNC`.
    pub const CREATE_TRUNC: OpenFlags = OpenFlags {
        read: true,
        write: true,
        create: true,
        truncate: true,
    };
}

/// The type of an inode.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FileType {
    /// A regular file.
    Regular,
    /// A directory.
    Directory,
}

impl fmt::Display for FileType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FileType::Regular => write!(f, "file"),
            FileType::Directory => write!(f, "dir"),
        }
    }
}

/// Metadata returned by [`FileSystem::stat`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Metadata {
    /// Inode number.
    pub ino: u64,
    /// File or directory.
    pub file_type: FileType,
    /// File size in bytes; for directories, the number of live entries.
    pub size: u64,
    /// Link count (1 for regular files without hard links, 2+ for dirs).
    pub nlink: u64,
}

/// One entry returned by [`FileSystem::readdir`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DirEntry {
    /// Entry name (a single path component).
    pub name: String,
    /// Inode number of the target.
    pub ino: u64,
    /// Type of the target inode.
    pub file_type: FileType,
}

/// Aggregate operation counters a file system may expose for the benchmark
/// harness and the scalability model.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FsStats {
    /// Number of cache-line flush operations issued to persistent memory.
    pub flushes: u64,
    /// Number of store fences issued.
    pub fences: u64,
    /// Number of kernel crossings (simulated syscalls).
    pub syscalls: u64,
    /// Number of integrity verifications performed.
    pub verifications: u64,
    /// Bytes written to persistent memory.
    pub pm_bytes_written: u64,
    /// Number of lock acquisitions taken on shared (cross-thread) state.
    pub shared_lock_acqs: u64,
}

/// The common file-system interface.
///
/// All methods take `&self`; implementations are internally synchronized and
/// callable from many threads, which is exactly what the FxMark and Filebench
/// harnesses do.
pub trait FileSystem: Send + Sync {
    /// A short human-readable identifier (e.g. `"arckfs+"`, `"nova"`).
    fn fs_name(&self) -> &str;

    /// Create (and open read-write) a regular file. Fails with
    /// [`FsError::AlreadyExists`] if the path already exists.
    fn create(&self, path: &str) -> FsResult<Fd>;

    /// Open an existing file, or create it when `flags.create` is set.
    fn open(&self, path: &str, flags: OpenFlags) -> FsResult<Fd>;

    /// Close a descriptor.
    fn close(&self, fd: Fd) -> FsResult<()>;

    /// Positional read (`pread`). Returns the number of bytes read, which is
    /// short only at end-of-file.
    fn read_at(&self, fd: Fd, buf: &mut [u8], offset: u64) -> FsResult<usize>;

    /// Positional write (`pwrite`). Extends the file as needed and persists
    /// the data before returning.
    fn write_at(&self, fd: Fd, buf: &[u8], offset: u64) -> FsResult<usize>;

    /// Append to the end of the file; returns the offset written at.
    fn append(&self, fd: Fd, buf: &[u8]) -> FsResult<u64>;

    /// Flush a file to stable storage. ArckFS-class systems persist every
    /// operation synchronously, so this returns immediately for them.
    fn fsync(&self, fd: Fd) -> FsResult<()>;

    /// Truncate (or extend with zeroes) an open file to `size` bytes.
    fn truncate(&self, fd: Fd, size: u64) -> FsResult<()>;

    /// Remove a regular file.
    fn unlink(&self, path: &str) -> FsResult<()>;

    /// Create a directory.
    fn mkdir(&self, path: &str) -> FsResult<()>;

    /// Remove an empty directory.
    fn rmdir(&self, path: &str) -> FsResult<()>;

    /// Rename a file or directory. Cross-directory renames of non-empty
    /// directories are the multi-inode "directory relocation" operation the
    /// paper's §3 and §4.1 study.
    fn rename(&self, from: &str, to: &str) -> FsResult<()>;

    /// List a directory.
    fn readdir(&self, path: &str) -> FsResult<Vec<DirEntry>>;

    /// Stat a path.
    fn stat(&self, path: &str) -> FsResult<Metadata>;

    /// Aggregate counters; used for the calibrated scalability model.
    fn stats(&self) -> FsStats {
        FsStats::default()
    }

    /// Reset the counters returned by [`FileSystem::stats`].
    fn reset_stats(&self) {}
}

/// Convenience: write an entire file at a path, creating it if necessary.
pub fn write_file(fs: &dyn FileSystem, path: &str, data: &[u8]) -> FsResult<()> {
    let fd = fs.open(path, OpenFlags::CREATE_TRUNC)?;
    let mut off = 0u64;
    let mut rem = data;
    while !rem.is_empty() {
        let n = fs.write_at(fd, rem, off)?;
        off += n as u64;
        rem = &rem[n..];
    }
    fs.close(fd)
}

/// Convenience: read an entire file at a path.
pub fn read_file(fs: &dyn FileSystem, path: &str) -> FsResult<Vec<u8>> {
    let fd = fs.open(path, OpenFlags::RDONLY)?;
    let size = fs.stat(path)?.size as usize;
    let mut buf = vec![0u8; size];
    let mut off = 0usize;
    while off < size {
        let n = fs.read_at(fd, &mut buf[off..], off as u64)?;
        if n == 0 {
            break;
        }
        off += n;
    }
    buf.truncate(off);
    fs.close(fd)?;
    Ok(buf)
}

/// Create every directory along `path` (like `mkdir -p`).
pub fn mkdir_all(fs: &dyn FileSystem, path: &str) -> FsResult<()> {
    let comps = path::components(path)?;
    let mut cur = String::new();
    for c in comps {
        cur.push('/');
        cur.push_str(c);
        match fs.mkdir(&cur) {
            Ok(()) | Err(FsError::AlreadyExists) => {}
            Err(e) => return Err(e),
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn open_flags_constants() {
        // Read through locals so the assertions check the const values as
        // data rather than folding away.
        let (r, c, t) = (
            OpenFlags::RDONLY,
            OpenFlags::CREATE,
            OpenFlags::CREATE_TRUNC,
        );
        assert_eq!((r.read, r.write), (true, false));
        assert_eq!((c.create, c.write), (true, true));
        assert_eq!((t.truncate, t.create), (true, true));
    }

    #[test]
    fn fd_display() {
        assert_eq!(Fd(3).to_string(), "fd3");
    }

    #[test]
    fn file_type_display() {
        assert_eq!(FileType::Regular.to_string(), "file");
        assert_eq!(FileType::Directory.to_string(), "dir");
    }
}
