#![warn(missing_docs)]

//! Common file-system interface for the ArckFS reproduction.
//!
//! Every file system in this workspace — ArckFS, ArckFS+, the
//! verify-every-operation userspace baseline, and the kernel-file-system
//! models — implements the [`FileSystem`] trait defined here, so the
//! benchmark harness (FxMark, Filebench, the LevelDB-like KV store, fio-style
//! data workloads) can drive any of them interchangeably.
//!
//! The trait is deliberately close to the POSIX surface the original TRIO
//! artifact intercepts: positional reads and writes (`pread`/`pwrite`-style),
//! path-based metadata operations, and an `fsync` that ArckFS-class systems
//! may implement as a no-op because every operation persists synchronously.
//!
//! Two API layers sit on top of the path-based core:
//!
//! * **handle-relative (`*at`) operations** — [`FileSystem::open_dir`] yields
//!   a directory handle, and [`FileSystem::open_at`] /
//!   [`FileSystem::stat_at`] / [`FileSystem::unlink_at`] /
//!   [`FileSystem::mkdir_at`] operate relative to it, letting
//!   implementations skip the per-component prefix walk entirely;
//! * the [`FsExt`] extension trait — whole-file convenience helpers
//!   (`fs.write_file(..)`) that supersede the deprecated free functions.

pub mod error;
pub mod path;

use std::fmt;

pub use error::{FaultKind, FsError, FsResult, QuotaKind};

/// A file descriptor handle returned by [`FileSystem::open`] and
/// [`FileSystem::create`].
///
/// Handles are plain integers so they can be passed freely between threads;
/// each file system maintains its own descriptor table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Fd(pub u64);

impl fmt::Display for Fd {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "fd{}", self.0)
    }
}

/// Flags accepted by [`FileSystem::open`], built fluently:
///
/// ```
/// use vfs::OpenFlags;
/// let f = OpenFlags::read().write().create_new();
/// assert!(f.read && f.write && f.create && f.excl);
/// ```
///
/// Starters are [`OpenFlags::read`], [`OpenFlags::rw`] and
/// [`OpenFlags::empty`]; every other flag chains off a starter. The old
/// `RDONLY`/`CREATE`-style constants remain as deprecated aliases.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct OpenFlags {
    /// Open for reading.
    pub read: bool,
    /// Open for writing.
    pub write: bool,
    /// Create the file if it does not exist (`O_CREAT`).
    pub create: bool,
    /// With [`OpenFlags::create`], fail with [`FsError::AlreadyExists`] if
    /// the path already exists (`O_EXCL`). The existence check and the
    /// creation are atomic: they happen inside one directory-bucket
    /// critical section, never as a separate lookup.
    pub excl: bool,
    /// Truncate the file to zero length on open (`O_TRUNC`).
    pub truncate: bool,
    /// Every write through this descriptor lands at end-of-file
    /// (`O_APPEND`); the positional offset passed to
    /// [`FileSystem::write_at`] is ignored.
    pub append: bool,
}

impl OpenFlags {
    /// No access mode at all; chain flags off this to build write-only
    /// descriptors (`OpenFlags::empty().write()`).
    pub const fn empty() -> OpenFlags {
        OpenFlags {
            read: false,
            write: false,
            create: false,
            excl: false,
            truncate: false,
            append: false,
        }
    }

    /// Start a builder opened for reading (`O_RDONLY`).
    pub const fn read() -> OpenFlags {
        let mut f = OpenFlags::empty();
        f.read = true;
        f
    }

    /// Start a builder opened for reading and writing (`O_RDWR`).
    pub const fn rw() -> OpenFlags {
        OpenFlags::read().write()
    }

    /// Add write access (`O_WRONLY` when chained off
    /// [`OpenFlags::empty`]).
    pub const fn write(mut self) -> OpenFlags {
        self.write = true;
        self
    }

    /// Create the file if missing (`O_CREAT`).
    pub const fn create(mut self) -> OpenFlags {
        self.create = true;
        self
    }

    /// Create the file, failing if it already exists
    /// (`O_CREAT | O_EXCL`, like [`std::fs::OpenOptions::create_new`]).
    pub const fn create_new(mut self) -> OpenFlags {
        self.create = true;
        self.excl = true;
        self
    }

    /// Require exclusive creation (`O_EXCL`); only meaningful together
    /// with [`OpenFlags::create`].
    pub const fn excl(mut self) -> OpenFlags {
        self.excl = true;
        self
    }

    /// Truncate on open (`O_TRUNC`).
    pub const fn truncate(mut self) -> OpenFlags {
        self.truncate = true;
        self
    }

    /// Append mode (`O_APPEND`); implies write access.
    pub const fn append(mut self) -> OpenFlags {
        self.write = true;
        self.append = true;
        self
    }

    /// `O_RDONLY`.
    #[deprecated(note = "use the builder: `OpenFlags::read()`")]
    pub const RDONLY: OpenFlags = OpenFlags::read();
    /// `O_WRONLY`.
    #[deprecated(note = "use the builder: `OpenFlags::empty().write()`")]
    pub const WRONLY: OpenFlags = OpenFlags::empty().write();
    /// `O_RDWR`.
    #[deprecated(note = "use the builder: `OpenFlags::rw()`")]
    pub const RDWR: OpenFlags = OpenFlags::rw();
    /// `O_RDWR | O_CREAT`.
    #[deprecated(note = "use the builder: `OpenFlags::rw().create()`")]
    pub const CREATE: OpenFlags = OpenFlags::rw().create();
    /// `O_RDWR | O_CREAT | O_TRUNC`.
    #[deprecated(note = "use the builder: `OpenFlags::rw().create().truncate()`")]
    pub const CREATE_TRUNC: OpenFlags = OpenFlags::rw().create().truncate();
}

/// The type of an inode.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FileType {
    /// A regular file.
    Regular,
    /// A directory.
    Directory,
}

impl fmt::Display for FileType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FileType::Regular => write!(f, "file"),
            FileType::Directory => write!(f, "dir"),
        }
    }
}

/// Metadata returned by [`FileSystem::stat`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Metadata {
    /// Inode number.
    pub ino: u64,
    /// File or directory.
    pub file_type: FileType,
    /// File size in bytes; for directories, the number of live entries.
    pub size: u64,
    /// Link count (1 for regular files without hard links, 2+ for dirs).
    pub nlink: u64,
}

/// One entry returned by [`FileSystem::readdir`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DirEntry {
    /// Entry name (a single path component).
    pub name: String,
    /// Inode number of the target.
    pub ino: u64,
    /// Type of the target inode.
    pub file_type: FileType,
}

/// Aggregate operation counters a file system may expose for the benchmark
/// harness and the scalability model.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FsStats {
    /// Number of cache-line flush operations issued to persistent memory.
    pub flushes: u64,
    /// Number of store fences issued.
    pub fences: u64,
    /// Number of kernel crossings (simulated syscalls).
    pub syscalls: u64,
    /// Number of integrity verifications performed.
    pub verifications: u64,
    /// Bytes written to persistent memory.
    pub pm_bytes_written: u64,
    /// Number of lock acquisitions taken on shared (cross-thread) state.
    pub shared_lock_acqs: u64,
    /// Path-resolution (dentry) cache hits.
    pub dcache_hits: u64,
    /// Path-resolution (dentry) cache misses (including fills).
    pub dcache_misses: u64,
    /// Per-directory generation bumps published by namespace writers; each
    /// bump invalidates every cached entry of that directory at once.
    pub dcache_invalidations: u64,
    /// Kernel extent grants used to restock the LibFS resource pools.
    pub pool_refills: u64,
    /// Items released back to the kernel when a pool slot crossed its high
    /// watermark.
    pub pool_releases: u64,
    /// Cross-shard fallbacks across the allocation stack: kernel allocator
    /// and inode-pool shard steals plus LibFS pool slot steals. Zero means
    /// every thread stayed on its home shard.
    pub alloc_steals: u64,
    /// Bytes whose delegated (I/O-delegation) store completed successfully.
    pub deleg_bytes: u64,
    /// Chunks enqueued into delegation submission rings.
    pub deleg_enqueued: u64,
    /// Delegation enqueue attempts that found a full ring (backpressure).
    pub deleg_backpressure: u64,
    /// High-water occupancy of any single delegation submission ring.
    pub deleg_sq_depth_max: u64,
    /// Delegation worker drain batches executed.
    pub deleg_batches: u64,
    /// Store fences issued by delegation drain batches; amortization means
    /// this stays below the chunk count as the drain batch grows.
    pub deleg_batch_fences: u64,
    /// Delegation ticket completions observed in the polling (spin) phase.
    pub deleg_polls: u64,
    /// Delegation ticket completions that parked on the condvar.
    pub deleg_parks: u64,
    /// Byte-range lock acquisitions on the shared-file data path (the
    /// range-lock discipline's replacement for the per-file lock; counted
    /// separately from `shared_lock_acqs` so the scalability model can see
    /// per-file lock acquisitions fall as range locks take over).
    pub range_lock_acqs: u64,
    /// Extent records appended (or coalesced) into per-file extent chains.
    pub extent_inserts: u64,
    /// Copy-on-write tail remaps performed by range-locked appends.
    pub cow_tail_copies: u64,
}

/// The common file-system interface.
///
/// All methods take `&self`; implementations are internally synchronized and
/// callable from many threads, which is exactly what the FxMark and Filebench
/// harnesses do.
///
/// The `*at` family ([`FileSystem::open_at`] and friends) operates relative
/// to a directory handle from [`FileSystem::open_dir`]. The default
/// implementations delegate to the path-based methods via
/// [`FileSystem::fd_dir_path`]; implementations with a native notion of
/// directory handles (the ArckFS LibFS) override them to skip the prefix
/// walk entirely.
pub trait FileSystem: Send + Sync {
    /// A short human-readable identifier (e.g. `"arckfs+"`, `"nova"`).
    fn fs_name(&self) -> &str;

    /// Create (and open read-write) a regular file. Fails with
    /// [`FsError::AlreadyExists`] if the path already exists.
    fn create(&self, path: &str) -> FsResult<Fd>;

    /// Open an existing file, or create it when `flags.create` is set.
    fn open(&self, path: &str, flags: OpenFlags) -> FsResult<Fd>;

    /// Close a descriptor.
    fn close(&self, fd: Fd) -> FsResult<()>;

    /// Positional read (`pread`). Returns the number of bytes read, which is
    /// short only at end-of-file.
    fn read_at(&self, fd: Fd, buf: &mut [u8], offset: u64) -> FsResult<usize>;

    /// Positional write (`pwrite`). Extends the file as needed and persists
    /// the data before returning.
    fn write_at(&self, fd: Fd, buf: &[u8], offset: u64) -> FsResult<usize>;

    /// Append to the end of the file; returns the offset written at.
    fn append(&self, fd: Fd, buf: &[u8]) -> FsResult<u64>;

    /// Vectored positional write (`pwritev`): every buffer in `bufs` lands
    /// contiguously starting at `offset`, and the whole gather is one
    /// atomic unit with respect to concurrent writers. The default loops
    /// over [`FileSystem::write_at`]; implementations with internal
    /// exclusion override it to acquire once, persist once.
    fn write_vectored_at(&self, fd: Fd, bufs: &[&[u8]], offset: u64) -> FsResult<usize> {
        let mut done = 0usize;
        for buf in bufs {
            let mut written = 0usize;
            while written < buf.len() {
                let n = self.write_at(fd, &buf[written..], offset + done as u64)?;
                written += n;
                done += n;
            }
        }
        Ok(done)
    }

    /// Vectored positional read (`preadv`): fill each buffer in `bufs`
    /// from consecutive offsets starting at `offset`. Returns the total
    /// bytes read, short only at end-of-file. The default loops over
    /// [`FileSystem::read_at`].
    fn read_vectored_at(&self, fd: Fd, bufs: &mut [&mut [u8]], offset: u64) -> FsResult<usize> {
        let mut done = 0usize;
        for buf in bufs.iter_mut() {
            let n = self.read_at(fd, buf, offset + done as u64)?;
            done += n;
            if n < buf.len() {
                break;
            }
        }
        Ok(done)
    }

    /// Preallocate backing storage for `[offset, offset + len)` and extend
    /// the file size over it, so the region reads as zeroes and later
    /// writes into it allocate nothing (`posix_fallocate` semantics).
    /// Optional; callers treat [`FsError::Unsupported`] as "preallocation
    /// is a no-op here", never as failure.
    fn fallocate(&self, fd: Fd, offset: u64, len: u64) -> FsResult<()> {
        let _ = (fd, offset, len);
        Err(FsError::Unsupported("fallocate"))
    }

    /// Flush a file to stable storage. ArckFS-class systems persist every
    /// operation synchronously, so this returns immediately for them.
    fn fsync(&self, fd: Fd) -> FsResult<()>;

    /// Make every completed operation durable, file-system-wide — the
    /// handle-less durability barrier. File systems that persist
    /// synchronously need nothing here (the default); ones that batch
    /// metadata commits (ArckFS group durability) override it to close
    /// their open commit batches.
    fn sync(&self) -> FsResult<()> {
        Ok(())
    }

    /// Truncate (or extend with zeroes) an open file to `size` bytes.
    fn truncate(&self, fd: Fd, size: u64) -> FsResult<()>;

    /// Remove a regular file.
    fn unlink(&self, path: &str) -> FsResult<()>;

    /// Create a directory.
    fn mkdir(&self, path: &str) -> FsResult<()>;

    /// Remove an empty directory.
    fn rmdir(&self, path: &str) -> FsResult<()>;

    /// Rename a file or directory. Cross-directory renames of non-empty
    /// directories are the multi-inode "directory relocation" operation the
    /// paper's §3 and §4.1 study.
    fn rename(&self, from: &str, to: &str) -> FsResult<()>;

    /// List a directory.
    fn readdir(&self, path: &str) -> FsResult<Vec<DirEntry>>;

    /// Stat a path.
    fn stat(&self, path: &str) -> FsResult<Metadata>;

    /// Stat an open descriptor (`fstat`). Unlike [`FileSystem::stat`] this
    /// cannot race with a rename or unlink of the path the descriptor was
    /// opened at.
    fn fstat(&self, fd: Fd) -> FsResult<Metadata> {
        let _ = fd;
        Err(FsError::Unsupported("fstat"))
    }

    /// Open a directory handle for use with the `*at` operations. The
    /// handle is closed with [`FileSystem::close`].
    fn open_dir(&self, path: &str) -> FsResult<Fd> {
        let _ = path;
        Err(FsError::Unsupported("open_dir"))
    }

    /// The absolute path a directory handle was opened at. Only needed by
    /// implementations that rely on the default path-delegating `*at`
    /// methods; natively handle-relative implementations never call it.
    fn fd_dir_path(&self, dirfd: Fd) -> FsResult<String> {
        let _ = dirfd;
        Err(FsError::Unsupported("fd_dir_path"))
    }

    /// Open `name` (a single component) relative to a directory handle.
    fn open_at(&self, dirfd: Fd, name: &str, flags: OpenFlags) -> FsResult<Fd> {
        path::validate_name(name)?;
        let dir = self.fd_dir_path(dirfd)?;
        self.open(&path::join(&dir, name), flags)
    }

    /// Stat `name` relative to a directory handle.
    fn stat_at(&self, dirfd: Fd, name: &str) -> FsResult<Metadata> {
        path::validate_name(name)?;
        let dir = self.fd_dir_path(dirfd)?;
        self.stat(&path::join(&dir, name))
    }

    /// Remove the regular file `name` relative to a directory handle.
    fn unlink_at(&self, dirfd: Fd, name: &str) -> FsResult<()> {
        path::validate_name(name)?;
        let dir = self.fd_dir_path(dirfd)?;
        self.unlink(&path::join(&dir, name))
    }

    /// Create the directory `name` relative to a directory handle.
    fn mkdir_at(&self, dirfd: Fd, name: &str) -> FsResult<()> {
        path::validate_name(name)?;
        let dir = self.fd_dir_path(dirfd)?;
        self.mkdir(&path::join(&dir, name))
    }

    /// Aggregate counters; used for the calibrated scalability model.
    fn stats(&self) -> FsStats {
        FsStats::default()
    }

    /// Reset the counters returned by [`FileSystem::stats`].
    fn reset_stats(&self) {}
}

/// Whole-file convenience operations, available on every [`FileSystem`]
/// (including `dyn FileSystem`) through a blanket implementation.
pub trait FsExt: FileSystem {
    /// Write an entire file at a path, creating it if necessary.
    fn write_file(&self, path: &str, data: &[u8]) -> FsResult<()> {
        let fd = self.open(path, OpenFlags::rw().create().truncate())?;
        let res = (|| {
            let mut off = 0u64;
            let mut rem = data;
            while !rem.is_empty() {
                let n = self.write_at(fd, rem, off)?;
                off += n as u64;
                rem = &rem[n..];
            }
            Ok(())
        })();
        let closed = self.close(fd);
        res.and(closed)
    }

    /// Read an entire file at a path.
    ///
    /// The size is taken from the open descriptor ([`FileSystem::fstat`]),
    /// not from a second path lookup, so a concurrent rename or
    /// unlink+create of `path` between open and stat cannot pair the wrong
    /// size with the descriptor. Implementations without `fstat` fall back
    /// to reading until end-of-file, which is equally race-free.
    fn read_file(&self, path: &str) -> FsResult<Vec<u8>> {
        let fd = self.open(path, OpenFlags::read())?;
        let res = (|| match self.fstat(fd) {
            Ok(md) => {
                let size = md.size as usize;
                let mut buf = vec![0u8; size];
                let mut off = 0usize;
                while off < size {
                    let n = self.read_at(fd, &mut buf[off..], off as u64)?;
                    if n == 0 {
                        break;
                    }
                    off += n;
                }
                buf.truncate(off);
                Ok(buf)
            }
            Err(FsError::Unsupported(_)) => {
                let mut buf = Vec::new();
                let mut chunk = vec![0u8; 64 * 1024];
                loop {
                    let n = self.read_at(fd, &mut chunk, buf.len() as u64)?;
                    if n == 0 {
                        break;
                    }
                    buf.extend_from_slice(&chunk[..n]);
                }
                Ok(buf)
            }
            Err(e) => Err(e),
        })();
        let closed = self.close(fd);
        match res {
            Ok(buf) => closed.map(|()| buf),
            Err(e) => Err(e),
        }
    }

    /// Create every directory along `path` (like `mkdir -p`).
    fn mkdir_all(&self, path: &str) -> FsResult<()> {
        let comps = path::components(path)?;
        let mut cur = String::new();
        for c in comps {
            cur.push('/');
            cur.push_str(c);
            match self.mkdir(&cur) {
                Ok(()) | Err(FsError::AlreadyExists) => {}
                Err(e) => return Err(e),
            }
        }
        Ok(())
    }
}

impl<F: FileSystem + ?Sized> FsExt for F {}

/// Convenience: write an entire file at a path, creating it if necessary.
#[deprecated(note = "use the `FsExt` method: `fs.write_file(path, data)`")]
pub fn write_file(fs: &dyn FileSystem, path: &str, data: &[u8]) -> FsResult<()> {
    fs.write_file(path, data)
}

/// Convenience: read an entire file at a path.
#[deprecated(note = "use the `FsExt` method: `fs.read_file(path)`")]
pub fn read_file(fs: &dyn FileSystem, path: &str) -> FsResult<Vec<u8>> {
    fs.read_file(path)
}

/// Create every directory along `path` (like `mkdir -p`).
#[deprecated(note = "use the `FsExt` method: `fs.mkdir_all(path)`")]
pub fn mkdir_all(fs: &dyn FileSystem, path: &str) -> FsResult<()> {
    fs.mkdir_all(path)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn open_flags_builder() {
        let r = OpenFlags::read();
        assert!(r.read && !r.write && !r.create);
        let w = OpenFlags::empty().write();
        assert!(!w.read && w.write);
        let cn = OpenFlags::read().write().create_new();
        assert!(cn.read && cn.write && cn.create && cn.excl && !cn.truncate);
        let ap = OpenFlags::empty().append();
        assert!(ap.write && ap.append, "append implies write");
        let ct = OpenFlags::rw().create().truncate();
        assert!(ct.create && ct.truncate && !ct.excl);
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_aliases_match_builder() {
        assert_eq!(OpenFlags::RDONLY, OpenFlags::read());
        assert_eq!(OpenFlags::WRONLY, OpenFlags::empty().write());
        assert_eq!(OpenFlags::RDWR, OpenFlags::rw());
        assert_eq!(OpenFlags::CREATE, OpenFlags::rw().create());
        assert_eq!(
            OpenFlags::CREATE_TRUNC,
            OpenFlags::rw().create().truncate()
        );
    }

    #[test]
    fn fd_display() {
        assert_eq!(Fd(3).to_string(), "fd3");
    }

    #[test]
    fn file_type_display() {
        assert_eq!(FileType::Regular.to_string(), "file");
        assert_eq!(FileType::Directory.to_string(), "dir");
    }
}
