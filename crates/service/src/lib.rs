#![warn(missing_docs)]

//! Multi-tenant ArckFS service harness.
//!
//! A long-running file-system *service* is not one benchmark thread in a
//! tight loop: it is many tenants — each with its own [`arckfs::LibFs`]
//! mounted on one shared [`trio::Kernel`] — whose requests arrive on their
//! own schedule whether or not the service has kept up. This crate builds
//! that shape:
//!
//! * [`Service::start`] formats a device and mounts `N` tenants (each a
//!   LibFS registered under its own uid — the uid *is* the quota tenant,
//!   see DESIGN.md §12), optionally with per-tenant page/inode quotas.
//! * [`Service::run_storm`] drives a mixed open/create/read/write/unlink
//!   storm through an **open-loop** arrival process: every request's
//!   arrival time is drawn up front from a seeded exponential
//!   inter-arrival distribution, and a request's measured latency is
//!   *completion minus scheduled arrival* — so when the service falls
//!   behind, queueing delay shows up in the tail instead of silently
//!   stretching the run (closed-loop harnesses hide exactly this).
//! * [`Service::audit`] re-derives durable per-tenant charges from commit
//!   markers ([`trio::derive_tenant_usage`]) and attributes any volatile
//!   residue to the tenant holding it.
//!
//! Tenants are split into a **hot** class (one tenant driven at a rate
//! multiple) and a **cold** class (everyone else); per-class latency
//! histograms make the fairness bound checkable: a hot tenant must not be
//! able to starve cold tenants of allocator throughput (the
//! work-stealing fairness cap in `pmem::ShardedPageAllocator`).

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use arckfs::{Config, LibFs};
use obs::Histogram;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use trio::{Kernel, KernelConfig};
use vfs::{Fd, FileSystem, FsError, OpenFlags};

/// Which load class a tenant belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TenantClass {
    /// The tenant driven at `hot_factor` times the cold rate.
    Hot,
    /// Everyone else.
    Cold,
}

/// Service-level configuration, honoring the `ARCKFS_*` environment knobs.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Number of tenants to mount (`ARCKFS_TENANTS`, default 64,
    /// clamped to `2..=4096`).
    pub tenants: usize,
    /// Per-tenant page quota (`ARCKFS_QUOTA_PAGES`; `0` or unset = off —
    /// the kernel then runs a bare provider: pay-for-what-you-use).
    pub page_quota: Option<u64>,
    /// Per-tenant inode quota (`ARCKFS_QUOTA_INODES`; `0` or unset = off).
    pub ino_quota: Option<u64>,
    /// Device size in bytes (`0` = sized from the tenant count).
    pub device_len: usize,
}

impl ServiceConfig {
    /// Read the configuration from the environment.
    pub fn from_env() -> ServiceConfig {
        ServiceConfig {
            tenants: usize_env("ARCKFS_TENANTS", 64).clamp(2, 4096),
            page_quota: quota_env("ARCKFS_QUOTA_PAGES"),
            ino_quota: quota_env("ARCKFS_QUOTA_INODES"),
            device_len: 0,
        }
    }

    /// A small fixed configuration for tests and smoke runs.
    pub fn small(tenants: usize) -> ServiceConfig {
        ServiceConfig {
            tenants: tenants.clamp(2, 4096),
            page_quota: None,
            ino_quota: None,
            device_len: 0,
        }
    }

    /// Set the per-tenant page quota (`None` disables).
    pub fn with_page_quota(mut self, q: Option<u64>) -> ServiceConfig {
        self.page_quota = q;
        self
    }

    /// Set the per-tenant inode quota (`None` disables).
    pub fn with_ino_quota(mut self, q: Option<u64>) -> ServiceConfig {
        self.ino_quota = q;
        self
    }

    fn effective_device_len(&self) -> usize {
        if self.device_len != 0 {
            return self.device_len;
        }
        // Per tenant: a pool refill's worth of pages, a small working set,
        // and directory log pages — doubled for slack. Floor of 64 MiB so
        // tiny tenant counts still get a sane geometry.
        let per_tenant = (2 * PAGE_BATCH + 4 * FILES_PER_TENANT) * pmem::PAGE_SIZE;
        (self.tenants * 2 * per_tenant).max(64 << 20)
    }
}

fn usize_env(var: &str, default: usize) -> usize {
    std::env::var(var)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn quota_env(var: &str) -> Option<u64> {
    match std::env::var(var).ok().and_then(|v| v.parse::<u64>().ok()) {
        Some(0) | None => None,
        Some(q) => Some(q),
    }
}

/// Pool batch sizes for service tenants. A service mounts hundreds of
/// LibFSes on one device; the single-tenant default batch (256 pages)
/// would pin `256 * N` pages in pools before the first byte is written,
/// so tenants refill in small steps instead.
const PAGE_BATCH: usize = 16;
const INO_BATCH: usize = 8;
const FILES_PER_TENANT: usize = 8;

/// First tenant uid: uids below this are reserved (root is 0).
pub const TENANT_UID_BASE: u32 = 100;

/// One mounted tenant.
pub struct Tenant {
    /// The tenant identity — the LibFS uid, durable in every inode it
    /// commits, and the key quotas charge against.
    pub uid: u32,
    /// The tenant's LibFS handle.
    pub fs: Arc<LibFs>,
    /// The tenant's home directory (all storm files live under it).
    pub home: String,
    /// Directory handle on `home`. Storm ops anchor here (`open_at` /
    /// `unlink_at`), so tenants never contend for the root inode — in the
    /// TRIO ownership model an inode has one owning LibFS at a time, and
    /// the root is only passed around during mount.
    pub home_fd: Fd,
}

/// The storm's shape: an open-loop arrival plan.
#[derive(Debug, Clone)]
pub struct StormPlan {
    /// Requests per tenant.
    pub ops_per_tenant: usize,
    /// Mean inter-arrival gap for a cold tenant, in microseconds.
    pub mean_gap_us: f64,
    /// Index of the hot tenant (driven at `hot_factor` times the cold
    /// rate), or `None` for a uniform storm.
    pub hot: Option<usize>,
    /// Rate multiplier for the hot tenant.
    pub hot_factor: f64,
    /// Worker threads executing the storm (fewer workers than tenants is
    /// the normal service shape — that is where queueing comes from).
    pub workers: usize,
    /// RNG seed for the arrival schedule and op mix.
    pub seed: u64,
}

impl StormPlan {
    /// A storm with no hot tenant.
    pub fn uniform(ops_per_tenant: usize, mean_gap_us: f64, workers: usize, seed: u64) -> Self {
        StormPlan {
            ops_per_tenant,
            mean_gap_us,
            hot: None,
            hot_factor: 1.0,
            workers: workers.max(1),
            seed,
        }
    }

    /// The same storm with tenant `hot` running at `factor` times the rate.
    pub fn with_hot(mut self, hot: usize, factor: f64) -> Self {
        self.hot = Some(hot);
        self.hot_factor = factor;
        self
    }
}

/// What one storm measured.
#[derive(Debug)]
pub struct StormReport {
    /// Latency (ns, completion minus scheduled arrival) of hot-class ops.
    pub hot: Histogram,
    /// Latency (ns) of cold-class ops.
    pub cold: Histogram,
    /// Requests completed successfully.
    pub ops: u64,
    /// Requests rejected by quota enforcement ([`FsError::QuotaExceeded`]).
    pub quota_rejections: u64,
    /// Requests failing for any other reason.
    pub errors: u64,
    /// The first non-quota error observed, for diagnostics.
    pub sample_error: Option<FsError>,
    /// Wall-clock duration of the storm.
    pub elapsed: Duration,
}

impl StormReport {
    /// Cold-class p99 latency in nanoseconds.
    pub fn cold_p99_ns(&self) -> u64 {
        self.cold.percentile(99.0)
    }

    /// Completed requests per second.
    pub fn ops_per_sec(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs <= 0.0 {
            return 0.0;
        }
        self.ops as f64 / secs
    }
}

/// One scheduled request.
struct Event {
    /// Scheduled arrival, microseconds from storm start.
    at_us: u64,
    tenant: u32,
    op: u32,
}

/// The running service: one kernel, `N` mounted tenants.
pub struct Service {
    kernel: Arc<Kernel>,
    tenants: Vec<Tenant>,
}

impl Service {
    /// Format a fresh device and mount `cfg.tenants` tenants, each under
    /// its own home directory. Quotas (if configured) wrap the kernel's
    /// providers before the first grant, so every mount-time allocation is
    /// already charged.
    pub fn start(cfg: &ServiceConfig) -> Result<Service, FsError> {
        let device = pmem::PmemDevice::new(cfg.effective_device_len());
        Self::start_on(device, cfg)
    }

    /// Like [`Service::start`], but on a caller-supplied device — e.g. a
    /// tracked device whose crash images the caller wants to sample.
    pub fn start_on(
        device: std::sync::Arc<pmem::PmemDevice>,
        cfg: &ServiceConfig,
    ) -> Result<Service, FsError> {
        let len = device.len();
        let geom = trio::Geometry::for_device(len);
        let kconfig = KernelConfig::arckfs_plus()
            .with_page_quota(cfg.page_quota)
            .with_ino_quota(cfg.ino_quota);
        let kernel = Kernel::format(device, geom, kconfig)?;
        let mut tenants = Vec::with_capacity(cfg.tenants);
        for i in 0..cfg.tenants {
            let uid = TENANT_UID_BASE + i as u32;
            let mut config = Config::arckfs_plus();
            config.page_batch = PAGE_BATCH;
            config.ino_batch = INO_BATCH;
            config.pool_low = PAGE_BATCH / 2;
            config.pool_high = PAGE_BATCH * 4;
            let fs = LibFs::mount(kernel.clone(), config, uid)?;
            let home = format!("/t{i}");
            // Root hand-off: creating the home acquires the root inode, so
            // release it once the home handle exists — the next tenant's
            // mkdir (and nothing in the storm) needs it.
            fs.mkdir(&home)?;
            let home_fd = fs.open_dir(&home)?;
            fs.release_path("/")?;
            tenants.push(Tenant {
                uid,
                fs,
                home,
                home_fd,
            });
        }
        Ok(Service { kernel, tenants })
    }

    /// The shared kernel.
    pub fn kernel(&self) -> &Arc<Kernel> {
        &self.kernel
    }

    /// The mounted tenants.
    pub fn tenants(&self) -> &[Tenant] {
        &self.tenants
    }

    /// The class a tenant index falls in under `plan`.
    pub fn class_of(plan: &StormPlan, tenant: usize) -> TenantClass {
        if plan.hot == Some(tenant) {
            TenantClass::Hot
        } else {
            TenantClass::Cold
        }
    }

    /// Pre-generate the open-loop schedule: per tenant, cumulative
    /// exponential inter-arrival times; globally, one time-sorted vector.
    fn schedule(&self, plan: &StormPlan) -> Vec<Event> {
        let mut events = Vec::with_capacity(self.tenants.len() * plan.ops_per_tenant);
        for (i, _) in self.tenants.iter().enumerate() {
            let mut rng = SmallRng::seed_from_u64(
                plan.seed ^ 0x9e37_79b9_7f4a_7c15u64.wrapping_mul(i as u64 + 1),
            );
            let mean = if plan.hot == Some(i) {
                plan.mean_gap_us / plan.hot_factor.max(1e-9)
            } else {
                plan.mean_gap_us
            };
            let mut at = 0.0f64;
            for op in 0..plan.ops_per_tenant {
                // Exponential inter-arrival: -ln(1 - u), u in [0, 1).
                let u: f64 = rng.gen_range(0.0..1.0);
                at += -(1.0 - u).ln() * mean;
                events.push(Event {
                    at_us: at as u64,
                    tenant: i as u32,
                    op: op as u32,
                });
            }
        }
        events.sort_by_key(|e| e.at_us);
        events
    }

    /// Run one storm and report per-class latency. Latency is measured
    /// against the *scheduled* arrival, so a backlogged service reports
    /// queueing delay instead of quietly slowing its own request stream.
    pub fn run_storm(&self, plan: &StormPlan) -> StormReport {
        let events = self.schedule(plan);
        let next = AtomicUsize::new(0);
        let ops = AtomicU64::new(0);
        let rejections = AtomicU64::new(0);
        let errors = AtomicU64::new(0);
        let sample_error: std::sync::Mutex<Option<FsError>> = std::sync::Mutex::new(None);
        let start = Instant::now();
        let (hot, cold) = std::thread::scope(|s| {
            let mut handles = Vec::new();
            for _ in 0..plan.workers {
                handles.push(s.spawn(|| {
                    let mut hot = Histogram::new();
                    let mut cold = Histogram::new();
                    loop {
                        let idx = next.fetch_add(1, Ordering::Relaxed);
                        let Some(ev) = events.get(idx) else { break };
                        let target = Duration::from_micros(ev.at_us);
                        // Open loop: wait for the scheduled arrival, then
                        // execute even if we are already late.
                        loop {
                            let now = start.elapsed();
                            if now >= target {
                                break;
                            }
                            let wait = target - now;
                            // `sleep` can oversleep by milliseconds, which
                            // would pollute the latency tail with scheduler
                            // noise; spin the final stretch instead.
                            if wait > Duration::from_millis(2) {
                                std::thread::sleep(wait - Duration::from_millis(2));
                            } else {
                                std::hint::spin_loop();
                            }
                        }
                        let t = &self.tenants[ev.tenant as usize];
                        match run_op(t, ev.op) {
                            Ok(()) => {
                                ops.fetch_add(1, Ordering::Relaxed);
                            }
                            Err(e) if e.is_quota() => {
                                rejections.fetch_add(1, Ordering::Relaxed);
                            }
                            Err(e) => {
                                errors.fetch_add(1, Ordering::Relaxed);
                                sample_error.lock().unwrap().get_or_insert(e);
                            }
                        }
                        let lat = start.elapsed().saturating_sub(target);
                        let h = match Self::class_of(plan, ev.tenant as usize) {
                            TenantClass::Hot => &mut hot,
                            TenantClass::Cold => &mut cold,
                        };
                        h.record(lat.as_nanos() as u64);
                    }
                    (hot, cold)
                }));
            }
            let mut all_hot = Histogram::new();
            let mut all_cold = Histogram::new();
            for h in handles {
                let (h_hot, h_cold) = h.join().expect("storm worker panicked");
                all_hot.merge(&h_hot);
                all_cold.merge(&h_cold);
            }
            (all_hot, all_cold)
        });
        let sample = sample_error.lock().unwrap().take();
        StormReport {
            hot,
            cold,
            ops: ops.load(Ordering::Relaxed),
            quota_rejections: rejections.load(Ordering::Relaxed),
            errors: errors.load(Ordering::Relaxed),
            sample_error: sample,
            elapsed: start.elapsed(),
        }
    }

    /// Per-tenant leak attribution: compare the providers' volatile
    /// charges against the durable usage commit markers pin. With quotas
    /// off both sides are empty (trait defaults) and the audit is vacuous.
    pub fn audit(&self) -> Result<(Vec<trio::TenantLeak>, Vec<trio::TenantLeak>), FsError> {
        let usage = trio::derive_tenant_usage(self.kernel.device(), self.kernel.geometry())
            .map_err(FsError::Corrupted)?;
        let pages = trio::attribute_tenant_leaks(
            vfs::QuotaKind::Pages,
            &self.kernel.allocator().charged_tenants(),
            &usage,
        );
        let inos = trio::attribute_tenant_leaks(
            vfs::QuotaKind::Inodes,
            &self.kernel.ino_provider().charged_tenants(),
            &usage,
        );
        Ok((pages, inos))
    }

    /// Execute one storm op synchronously on tenant `i` — the quota-probe
    /// path of the `service_storm` bench.
    pub fn exec(&self, tenant: usize, op: u32) -> Result<(), FsError> {
        run_op(&self.tenants[tenant], op)
    }

    /// Create and fill distinct one-page files on tenant `i` until a grant
    /// is rejected or `max_files` succeed. With a quota wrapper installed
    /// this drains the tenant's page pool and then forces a refill grant,
    /// surfacing the typed [`FsError::QuotaExceeded`] the bench pins.
    pub fn fill_until_quota(&self, tenant: usize, max_files: usize) -> Result<(), FsError> {
        let t = &self.tenants[tenant];
        let buf = [7u8; pmem::PAGE_SIZE];
        for j in 0..max_files {
            let name = format!("q{j}");
            let fd = t.fs.open_at(t.home_fd, &name, OpenFlags::rw().create())?;
            let r = t.fs.write_at(fd, &buf, 0).map(|_| ());
            t.fs.close(fd)?;
            r?;
        }
        Ok(())
    }

    /// Unmount every tenant (returning pooled resources to the kernel).
    pub fn shutdown(self) -> Result<(), FsError> {
        for t in &self.tenants {
            t.fs.unmount()?;
        }
        Ok(())
    }
}

/// One storm request: a self-contained slice of the per-tenant file
/// lifecycle. The mix cycles create → read → write → read → unlink over a
/// small working set; each op repairs a missing file rather than failing,
/// so out-of-order completion across workers never cascades.
///
/// A [`FsError::NotFound`] that survives the repair (the file vanished
/// between lookup and use — workers race the same tenant's unlinks) is a
/// client-visible `ENOENT`, not a service failure: the request completed.
fn run_op(t: &Tenant, op: u32) -> Result<(), FsError> {
    match run_op_inner(t, op) {
        Err(FsError::NotFound) => Ok(()),
        other => other,
    }
}

fn run_op_inner(t: &Tenant, op: u32) -> Result<(), FsError> {
    let name = format!("f{}", op as usize % FILES_PER_TENANT);
    let fs = &*t.fs;
    let mut buf = [0u8; 512];
    match op % 5 {
        0 => {
            let fd = fs.open_at(t.home_fd, &name, OpenFlags::rw().create())?;
            let r = fs.write_at(fd, &buf, 0).map(|_| ());
            fs.close(fd)?;
            r
        }
        1 | 3 => {
            let fd = match fs.open_at(t.home_fd, &name, OpenFlags::read()) {
                Ok(fd) => fd,
                Err(FsError::NotFound) => fs.open_at(t.home_fd, &name, OpenFlags::rw().create())?,
                Err(e) => return Err(e),
            };
            let r = fs.read_at(fd, &mut buf, 0).map(|_| ());
            fs.close(fd)?;
            r
        }
        2 => {
            let fd = fs.open_at(t.home_fd, &name, OpenFlags::rw().create())?;
            buf[0] = op as u8;
            let r = fs.write_at(fd, &buf, (op as u64 % 4) * 512).map(|_| ());
            fs.close(fd)?;
            r
        }
        _ => match fs.unlink_at(t.home_fd, &name) {
            Ok(()) | Err(FsError::NotFound) => Ok(()),
            Err(e) => Err(e),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn storm_completes_and_classes_fill() {
        let svc = Service::start(&ServiceConfig::small(4)).unwrap();
        let plan = StormPlan::uniform(40, 20.0, 2, 7).with_hot(0, 4.0);
        let report = svc.run_storm(&plan);
        assert_eq!(report.errors, 0, "storm must not error: {report:?}");
        assert_eq!(report.quota_rejections, 0);
        assert_eq!(report.ops, 4 * 40);
        assert_eq!(report.hot.count(), 40);
        assert_eq!(report.cold.count(), 3 * 40);
        assert!(report.cold_p99_ns() > 0);
        svc.shutdown().unwrap();
    }

    #[test]
    fn schedule_is_deterministic_and_open_loop() {
        let svc = Service::start(&ServiceConfig::small(2)).unwrap();
        let plan = StormPlan::uniform(50, 10.0, 1, 42).with_hot(1, 10.0);
        let a = svc.schedule(&plan);
        let b = svc.schedule(&plan);
        assert_eq!(a.len(), 100);
        assert!(a
            .iter()
            .zip(&b)
            .all(|(x, y)| x.at_us == y.at_us && x.tenant == y.tenant && x.op == y.op));
        assert!(a.windows(2).all(|w| w[0].at_us <= w[1].at_us), "sorted");
        // The hot tenant arrives ~10x as often, so it dominates the early
        // prefix of the merged schedule.
        let hot_ops = a.iter().take(50).filter(|e| e.tenant == 1).count();
        assert!(hot_ops > 30, "hot tenant underrepresented: {hot_ops}");
    }

    #[test]
    fn quota_storm_rejects_only_the_capped_tenant() {
        let svc = Service::start(
            &ServiceConfig::small(3).with_page_quota(Some(8)), // < one refill batch
        )
        .unwrap();
        // Tenant 0's budget is mostly consumed by mount (dir log pages) and
        // the first refills; hammering writes must hit the quota while the
        // other tenants stay clean.
        let t0 = &svc.tenants()[0];
        let mut saw_quota = false;
        for op in 0..200 {
            match run_op(t0, op * 5) {
                Ok(()) => {}
                Err(e) if e.is_quota() => {
                    saw_quota = true;
                    break;
                }
                Err(e) => panic!("unexpected error: {e:?}"),
            }
        }
        assert!(saw_quota, "capped tenant never hit its quota");
        // The other tenants still make progress.
        for t in &svc.tenants()[1..] {
            run_op(t, 0).unwrap();
        }
        let charged = svc.kernel().allocator().charged_tenants();
        assert!(!charged.is_empty(), "quota wrapper must track charges");
    }

    #[test]
    fn audit_attributes_residue_per_tenant() {
        let svc = Service::start(
            &ServiceConfig::small(2)
                .with_page_quota(Some(64))
                .with_ino_quota(Some(32)),
        )
        .unwrap();
        let plan = StormPlan::uniform(30, 5.0, 2, 3);
        let report = svc.run_storm(&plan);
        assert_eq!(report.errors, 0, "{report:?}");
        let (pages, inos) = svc.audit().unwrap();
        // Pooled-but-unlinked grants are benign residue: every attributed
        // leak must have charged >= durable and belong to a real tenant.
        for leak in pages.iter().chain(&inos) {
            assert!(
                leak.charged >= leak.durable,
                "durable charge above volatile: {leak:?}"
            );
            assert!(leak.tenant >= TENANT_UID_BASE as u64);
        }
    }
}
