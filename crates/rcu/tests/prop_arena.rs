//! Property tests: the generation-tagged arena against a HashMap oracle,
//! under arbitrary insert/read/update/free sequences.

use std::collections::HashMap;
use std::sync::Arc;

use proptest::prelude::*;
use rcu::{Arena, ArenaRef, Rcu};

#[derive(Debug, Clone)]
enum Op {
    Insert(u32),
    /// Read the k-th live ref (mod population).
    Read(usize),
    /// Update the k-th live ref.
    Update(usize, u32),
    /// Free the k-th live ref.
    Free(usize),
    /// Read a ref freed earlier (must fail).
    ReadStale(usize),
}

fn ops() -> impl Strategy<Value = Vec<Op>> {
    proptest::collection::vec(
        prop_oneof![
            any::<u32>().prop_map(Op::Insert),
            any::<usize>().prop_map(Op::Read),
            (any::<usize>(), any::<u32>()).prop_map(|(k, v)| Op::Update(k, v)),
            any::<usize>().prop_map(Op::Free),
            any::<usize>().prop_map(Op::ReadStale),
        ],
        0..120,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn arena_matches_oracle(ops in ops()) {
        let arena: Arena<u32> = Arena::new();
        let mut live: Vec<(ArenaRef, u32)> = Vec::new();
        let mut freed: Vec<ArenaRef> = Vec::new();
        let mut oracle: HashMap<ArenaRef, u32> = HashMap::new();

        for op in ops {
            match op {
                Op::Insert(v) => {
                    let r = arena.insert(v);
                    prop_assert!(!oracle.contains_key(&r), "ref reuse without gen bump");
                    live.push((r, v));
                    oracle.insert(r, v);
                }
                Op::Read(k) if !live.is_empty() => {
                    let (r, v) = live[k % live.len()];
                    prop_assert_eq!(arena.read(r, |x| *x).unwrap(), v);
                    prop_assert_eq!(oracle[&r], v);
                }
                Op::Update(k, nv) if !live.is_empty() => {
                    let idx = k % live.len();
                    let (r, _) = live[idx];
                    arena.update(r, |x| *x = nv).unwrap();
                    live[idx].1 = nv;
                    oracle.insert(r, nv);
                }
                Op::Free(k) if !live.is_empty() => {
                    let idx = k % live.len();
                    let (r, v) = live.swap_remove(idx);
                    prop_assert_eq!(arena.free(r).unwrap(), v);
                    oracle.remove(&r);
                    freed.push(r);
                }
                Op::ReadStale(k) if !freed.is_empty() => {
                    let r = freed[k % freed.len()];
                    prop_assert!(arena.read(r, |x| *x).is_err(), "stale ref must fault");
                    prop_assert!(arena.update(r, |_| ()).is_err());
                    prop_assert!(arena.free(r).is_err(), "double free must fault");
                }
                _ => {}
            }
        }
        prop_assert_eq!(arena.live(), live.len());
        // Everything still live reads back correctly at the end.
        for (r, v) in live {
            prop_assert_eq!(arena.read(r, |x| *x).unwrap(), v);
        }
    }

    /// Deferred frees never invalidate a ref while a guard from before the
    /// free is still held, for arbitrary interleavings of defers.
    #[test]
    fn deferred_frees_respect_guards(n in 1usize..20) {
        let arena: Arc<Arena<u32>> = Arc::new(Arena::new());
        let rcu = Rcu::new();
        let refs: Vec<ArenaRef> = (0..n as u32).map(|i| arena.insert(i)).collect();
        let guard = rcu.read_guard();
        for &r in &refs {
            arena.free_deferred(r, &rcu);
        }
        for _ in 0..4 {
            rcu.try_collect();
        }
        // All still readable under the pre-existing guard.
        for (i, &r) in refs.iter().enumerate() {
            prop_assert_eq!(arena.read(r, |x| *x).unwrap(), i as u32);
        }
        drop(guard);
        rcu.synchronize();
        for &r in &refs {
            prop_assert!(arena.read(r, |x| *x).is_err());
        }
        prop_assert_eq!(arena.live(), 0);
    }
}
