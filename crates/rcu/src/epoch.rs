//! Epoch-based reclamation.
//!
//! The scheme is the classic three-colour epoch design (as used by Linux's
//! userspace RCU and crossbeam-epoch), kept deliberately simple:
//!
//! * A global epoch counter advances monotonically.
//! * Each reader thread owns a slot. Entering a read-side critical section
//!   ([`Rcu::read_guard`]) publishes the observed global epoch in the slot;
//!   leaving clears it.
//! * [`Rcu::defer`] retires a destructor tagged with the current epoch.
//! * A retired destructor runs only when every active reader has pinned an
//!   epoch **more than one** epoch newer than the retire epoch. The
//!   two-epoch margin absorbs the race between a reader observing the global
//!   epoch and publishing its pin.
//!
//! All epoch traffic uses `SeqCst`; this is a correctness-first
//! implementation (the paper's point, after all, is that clever
//! synchronization in this area is where ArckFS went wrong).

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Weak};

use parking_lot::Mutex;

/// Sentinel meaning "not in a read-side critical section".
const QUIESCENT: u64 = u64::MAX;

/// Per-reader-thread slot. `epoch` is the pinned epoch or [`QUIESCENT`].
#[derive(Debug)]
struct Slot {
    epoch: AtomicU64,
}

/// Thread-local bookkeeping for one `(thread, Rcu)` pair.
struct LocalPin {
    slot: Arc<Slot>,
    depth: usize,
}

thread_local! {
    /// Slots for every `Rcu` instance this thread has read from, keyed by
    /// the instance's unique domain id.
    static LOCAL: std::cell::RefCell<HashMap<u64, LocalPin>> =
        std::cell::RefCell::new(HashMap::new());
}

type Destructor = Box<dyn FnOnce() + Send>;

/// A deferred destructor tagged with the epoch it was retired in.
struct Retired {
    epoch: u64,
    dtor: Destructor,
}

impl std::fmt::Debug for Retired {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Retired")
            .field("epoch", &self.epoch)
            .finish()
    }
}

/// An epoch-based RCU domain.
///
/// Construct with [`Rcu::new`] and share via `Arc`. Each ArckFS+ directory
/// index shares its LibFS's domain.
///
/// # Examples
///
/// ```
/// use std::sync::atomic::{AtomicBool, Ordering};
/// use std::sync::Arc;
///
/// let rcu = rcu::Rcu::new();
/// let freed = Arc::new(AtomicBool::new(false));
/// let guard = rcu.read_guard();
/// let f = freed.clone();
/// rcu.defer(move || f.store(true, Ordering::SeqCst));
/// rcu.try_collect();
/// assert!(!freed.load(Ordering::SeqCst)); // reader still pinned
/// drop(guard);
/// rcu.synchronize();
/// assert!(freed.load(Ordering::SeqCst));
/// ```
#[derive(Debug)]
pub struct Rcu {
    /// Unique domain id — the thread-local slot map is keyed by this, not
    /// by address, so a new domain allocated where a dropped one lived
    /// cannot inherit its stale slots.
    id: u64,
    global: AtomicU64,
    slots: Mutex<Vec<Weak<Slot>>>,
    retired: Mutex<Vec<Retired>>,
    /// Number of destructors run so far (observability for tests).
    reclaimed: AtomicU64,
    /// Collect eagerly once this many destructors are pending.
    collect_threshold: usize,
}

/// Monotonic domain id source.
static NEXT_DOMAIN: AtomicU64 = AtomicU64::new(1);

impl Rcu {
    /// A fresh RCU domain.
    pub fn new() -> Arc<Rcu> {
        Arc::new(Rcu {
            id: NEXT_DOMAIN.fetch_add(1, Ordering::Relaxed),
            global: AtomicU64::new(2),
            slots: Mutex::new(Vec::new()),
            retired: Mutex::new(Vec::new()),
            reclaimed: AtomicU64::new(0),
            collect_threshold: 64,
        })
    }

    fn key(self: &Arc<Self>) -> u64 {
        self.id
    }

    /// Enter a read-side critical section. Guards nest; the pin is released
    /// when the outermost guard drops.
    pub fn read_guard(self: &Arc<Self>) -> Guard {
        let key = self.key();
        LOCAL.with(|local| {
            let mut map = local.borrow_mut();
            let pin = map.entry(key).or_insert_with(|| {
                let slot = Arc::new(Slot {
                    epoch: AtomicU64::new(QUIESCENT),
                });
                self.slots.lock().push(Arc::downgrade(&slot));
                LocalPin { slot, depth: 0 }
            });
            if pin.depth == 0 {
                // Publish the pin, then re-check the global epoch: if it
                // moved underneath us, re-publish. After the loop, any
                // epoch advance must observe our pin.
                loop {
                    let g = self.global.load(Ordering::SeqCst);
                    pin.slot.epoch.store(g, Ordering::SeqCst);
                    if self.global.load(Ordering::SeqCst) == g {
                        break;
                    }
                }
            }
            pin.depth += 1;
        });
        Guard {
            rcu: Arc::clone(self),
        }
    }

    fn unpin(self: &Arc<Self>) {
        let key = self.key();
        LOCAL.with(|local| {
            let mut map = local.borrow_mut();
            let pin = map.get_mut(&key).expect("unpin without pin");
            pin.depth -= 1;
            if pin.depth == 0 {
                pin.slot.epoch.store(QUIESCENT, Ordering::SeqCst);
            }
        });
    }

    /// Smallest epoch pinned by any live reader, or `None` if all quiescent.
    fn min_pinned(&self) -> Option<u64> {
        let mut slots = self.slots.lock();
        slots.retain(|w| w.strong_count() > 0);
        slots
            .iter()
            .filter_map(|w| w.upgrade())
            .map(|s| s.epoch.load(Ordering::SeqCst))
            .filter(|&e| e != QUIESCENT)
            .min()
    }

    /// Retire a destructor; it runs after a grace period.
    pub fn defer<F: FnOnce() + Send + 'static>(self: &Arc<Self>, dtor: F) {
        let epoch = self.global.load(Ordering::SeqCst);
        let pending = {
            let mut r = self.retired.lock();
            r.push(Retired {
                epoch,
                dtor: Box::new(dtor),
            });
            r.len()
        };
        if pending >= self.collect_threshold {
            self.try_collect();
        }
    }

    /// Advance the global epoch and run every destructor whose grace period
    /// has elapsed. Returns the number of destructors run.
    pub fn try_collect(self: &Arc<Self>) -> usize {
        self.global.fetch_add(1, Ordering::SeqCst);
        let horizon = match self.min_pinned() {
            // A retiree at epoch E is safe when E < min_pinned - 1.
            Some(min) => min.saturating_sub(1),
            // No readers at all: everything retired before the (just
            // advanced) epoch is safe.
            None => self.global.load(Ordering::SeqCst),
        };
        let ready: Vec<Retired> = {
            let mut r = self.retired.lock();
            let (run, keep): (Vec<_>, Vec<_>) = r.drain(..).partition(|x| x.epoch < horizon);
            *r = keep;
            run
        };
        let n = ready.len();
        for item in ready {
            (item.dtor)();
        }
        self.reclaimed.fetch_add(n as u64, Ordering::Relaxed);
        n
    }

    /// Block until every destructor retired before this call has run
    /// (classic `synchronize_rcu`). Spins with yields; read-side critical
    /// sections are short in ArckFS+.
    pub fn synchronize(self: &Arc<Self>) {
        let target = self.global.load(Ordering::SeqCst);
        loop {
            self.try_collect();
            let done = {
                let r = self.retired.lock();
                r.iter().all(|x| x.epoch > target)
            };
            if done {
                return;
            }
            std::thread::yield_now();
        }
    }

    /// Number of destructors currently waiting for a grace period.
    pub fn pending(&self) -> usize {
        self.retired.lock().len()
    }

    /// Total destructors run since creation.
    pub fn reclaimed(&self) -> u64 {
        self.reclaimed.load(Ordering::Relaxed)
    }

    /// Current global epoch (observability for tests).
    pub fn epoch(&self) -> u64 {
        self.global.load(Ordering::SeqCst)
    }
}

/// A read-side critical section. Dropping the outermost guard of a thread
/// unpins it.
#[must_use = "dropping the guard immediately ends the critical section"]
pub struct Guard {
    rcu: Arc<Rcu>,
}

impl Drop for Guard {
    fn drop(&mut self) {
        self.rcu.unpin();
    }
}

impl std::fmt::Debug for Guard {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Guard").finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicBool;
    use std::time::Duration;

    #[test]
    fn defer_runs_without_readers() {
        let rcu = Rcu::new();
        let ran = Arc::new(AtomicBool::new(false));
        let r2 = ran.clone();
        rcu.defer(move || r2.store(true, Ordering::SeqCst));
        rcu.synchronize();
        assert!(ran.load(Ordering::SeqCst));
        assert_eq!(rcu.pending(), 0);
        assert_eq!(rcu.reclaimed(), 1);
    }

    #[test]
    fn guard_blocks_reclamation() {
        let rcu = Rcu::new();
        let ran = Arc::new(AtomicBool::new(false));
        let g = rcu.read_guard();
        let r2 = ran.clone();
        rcu.defer(move || r2.store(true, Ordering::SeqCst));
        for _ in 0..10 {
            rcu.try_collect();
        }
        assert!(
            !ran.load(Ordering::SeqCst),
            "destructor ran while a reader was pinned at the retire epoch"
        );
        drop(g);
        rcu.synchronize();
        assert!(ran.load(Ordering::SeqCst));
    }

    #[test]
    fn nested_guards() {
        let rcu = Rcu::new();
        let ran = Arc::new(AtomicBool::new(false));
        let g1 = rcu.read_guard();
        let g2 = rcu.read_guard();
        let r2 = ran.clone();
        rcu.defer(move || r2.store(true, Ordering::SeqCst));
        drop(g1);
        rcu.try_collect();
        assert!(!ran.load(Ordering::SeqCst), "inner guard still pinned");
        drop(g2);
        rcu.synchronize();
        assert!(ran.load(Ordering::SeqCst));
    }

    #[test]
    fn cross_thread_grace_period() {
        let rcu = Rcu::new();
        let ran = Arc::new(AtomicBool::new(false));
        let hold = Arc::new(AtomicBool::new(true));

        let rcu2 = rcu.clone();
        let hold2 = hold.clone();
        let reader = std::thread::spawn(move || {
            let _g = rcu2.read_guard();
            while hold2.load(Ordering::SeqCst) {
                std::thread::sleep(Duration::from_millis(1));
            }
        });
        // Give the reader time to pin.
        std::thread::sleep(Duration::from_millis(20));
        let r2 = ran.clone();
        rcu.defer(move || r2.store(true, Ordering::SeqCst));
        for _ in 0..10 {
            rcu.try_collect();
            assert!(!ran.load(Ordering::SeqCst));
        }
        hold.store(false, Ordering::SeqCst);
        reader.join().unwrap();
        rcu.synchronize();
        assert!(ran.load(Ordering::SeqCst));
    }

    #[test]
    fn many_defers_collected_in_order_of_safety() {
        let rcu = Rcu::new();
        let count = Arc::new(AtomicU64::new(0));
        for _ in 0..200 {
            let c = count.clone();
            rcu.defer(move || {
                c.fetch_add(1, Ordering::SeqCst);
            });
        }
        rcu.synchronize();
        assert_eq!(count.load(Ordering::SeqCst), 200);
    }

    #[test]
    fn two_domains_are_independent() {
        let a = Rcu::new();
        let b = Rcu::new();
        let _ga = a.read_guard();
        let ran = Arc::new(AtomicBool::new(false));
        let r2 = ran.clone();
        b.defer(move || r2.store(true, Ordering::SeqCst));
        // Domain `a`'s guard must not block domain `b`'s reclamation.
        b.synchronize();
        assert!(ran.load(Ordering::SeqCst));
    }

    #[test]
    fn epoch_advances() {
        let rcu = Rcu::new();
        let e0 = rcu.epoch();
        rcu.try_collect();
        assert!(rcu.epoch() > e0);
    }
}
