#![warn(missing_docs)]

//! Read-copy-update (RCU) and a generation-tagged slot arena.
//!
//! The ArckFS+ patch for §4.5 ("incorrect synchronization for directory
//! bucket") introduces RCU so that directory readers can traverse hash
//! buckets without locks while writers defer freeing removed entries until
//! no reader can still observe them. This crate provides:
//!
//! * [`Rcu`] — epoch-based reclamation built from scratch: readers pin the
//!   global epoch inside a [`Guard`]; retired objects are freed only after a
//!   two-epoch grace period with no reader pinned at or before the retire
//!   epoch.
//! * [`arena::Arena`] — the allocation substrate for directory-index
//!   entries. Every slot carries a generation; an access through a stale
//!   [`arena::ArenaRef`] is detected and reported as a use-after-free
//!   instead of being undefined behaviour, which is how this reproduction
//!   models the SIGSEGVs of §4.4/§4.5 (see `DESIGN.md`).

pub mod arena;
pub mod epoch;

pub use arena::{Arena, ArenaRef, UafError};
pub use epoch::{Guard, Rcu};
