//! Generation-tagged slot arena.
//!
//! The DRAM directory index of ArckFS allocates its dentry entries from a
//! heap; the §4.5 bug is a reader dereferencing an entry a concurrent writer
//! freed. In C that is a use-after-free that usually segfaults. Here the
//! index allocates from an [`Arena`]: each slot carries a generation
//! number, an [`ArenaRef`] captures the generation it was created under,
//! and any access through a stale reference is *detected* and reported as
//! [`UafError`] — the modelled SIGSEGV.
//!
//! Freeing can be immediate ([`Arena::free`], the buggy ArckFS path) or
//! deferred through an RCU domain ([`Arena::free_deferred`], the ArckFS+
//! patch): the slot is only invalidated after a grace period, so readers
//! inside a [`crate::Guard`] never observe a stale slot.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::{Mutex, RwLock};

use crate::epoch::Rcu;

/// A detected use-after-free (the modelled SIGSEGV of §4.4/§4.5).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UafError {
    /// Slot index accessed.
    pub slot: usize,
    /// Generation the reference was created under.
    pub expected_gen: u64,
    /// Generation found in the slot (even = free, odd = occupied).
    pub found_gen: u64,
}

impl std::fmt::Display for UafError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "use-after-free: slot {} expected gen {} found gen {}",
            self.slot, self.expected_gen, self.found_gen
        )
    }
}

impl std::error::Error for UafError {}

/// A reference into an [`Arena`]. Copyable; never dangles undetectably.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ArenaRef {
    /// Slot index.
    pub index: usize,
    /// Generation (always odd: occupied) captured at insertion.
    pub gen: u64,
}

#[derive(Debug)]
struct Slot<T> {
    /// Even = free, odd = occupied. Starts at 0 (free); `insert` makes it
    /// odd; `free` makes it even again, invalidating outstanding refs.
    gen: AtomicU64,
    value: RwLock<Option<T>>,
}

/// A concurrent slot arena with generation-checked access.
#[derive(Debug)]
pub struct Arena<T> {
    slots: RwLock<Vec<Arc<Slot<T>>>>,
    free_list: Mutex<Vec<usize>>,
}

impl<T: Send + Sync + 'static> Default for Arena<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T: Send + Sync + 'static> Arena<T> {
    /// An empty arena.
    pub fn new() -> Self {
        Arena {
            slots: RwLock::new(Vec::new()),
            free_list: Mutex::new(Vec::new()),
        }
    }

    /// Insert a value, reusing a free slot when available.
    pub fn insert(&self, value: T) -> ArenaRef {
        let reuse = self.free_list.lock().pop();
        match reuse {
            Some(index) => {
                let slot = self.slots.read()[index].clone();
                let mut v = slot.value.write();
                debug_assert!(v.is_none(), "free-listed slot still occupied");
                *v = Some(value);
                // Even -> odd: occupy under a fresh generation.
                let gen = slot.gen.fetch_add(1, Ordering::SeqCst) + 1;
                debug_assert!(gen % 2 == 1);
                ArenaRef { index, gen }
            }
            None => {
                let slot = Arc::new(Slot {
                    gen: AtomicU64::new(1),
                    value: RwLock::new(Some(value)),
                });
                let mut slots = self.slots.write();
                slots.push(slot);
                ArenaRef {
                    index: slots.len() - 1,
                    gen: 1,
                }
            }
        }
    }

    fn slot(&self, index: usize) -> Option<Arc<Slot<T>>> {
        self.slots.read().get(index).cloned()
    }

    /// Read the value behind `r`, passing it to `f`. Fails with [`UafError`]
    /// if the slot was freed (or freed and reused) since `r` was created —
    /// the access the C artifact would have crashed on.
    pub fn read<R>(&self, r: ArenaRef, f: impl FnOnce(&T) -> R) -> Result<R, UafError> {
        let slot = self.slot(r.index).ok_or(UafError {
            slot: r.index,
            expected_gen: r.gen,
            found_gen: 0,
        })?;
        let found = slot.gen.load(Ordering::SeqCst);
        if found != r.gen {
            return Err(UafError {
                slot: r.index,
                expected_gen: r.gen,
                found_gen: found,
            });
        }
        let guard = slot.value.read();
        // Re-check under the value lock: a free may have raced between the
        // generation check and the lock acquisition.
        let found = slot.gen.load(Ordering::SeqCst);
        if found != r.gen {
            return Err(UafError {
                slot: r.index,
                expected_gen: r.gen,
                found_gen: found,
            });
        }
        match guard.as_ref() {
            Some(v) => Ok(f(v)),
            None => Err(UafError {
                slot: r.index,
                expected_gen: r.gen,
                found_gen: found,
            }),
        }
    }

    /// Mutate the value behind `r`.
    pub fn update<R>(&self, r: ArenaRef, f: impl FnOnce(&mut T) -> R) -> Result<R, UafError> {
        let slot = self.slot(r.index).ok_or(UafError {
            slot: r.index,
            expected_gen: r.gen,
            found_gen: 0,
        })?;
        let mut guard = slot.value.write();
        let found = slot.gen.load(Ordering::SeqCst);
        if found != r.gen {
            return Err(UafError {
                slot: r.index,
                expected_gen: r.gen,
                found_gen: found,
            });
        }
        match guard.as_mut() {
            Some(v) => Ok(f(v)),
            None => Err(UafError {
                slot: r.index,
                expected_gen: r.gen,
                found_gen: found,
            }),
        }
    }

    /// Immediately free the slot (the **buggy** ArckFS path): outstanding
    /// references become stale at once, even if a reader is mid-traversal.
    pub fn free(&self, r: ArenaRef) -> Result<T, UafError> {
        let slot = self.slot(r.index).ok_or(UafError {
            slot: r.index,
            expected_gen: r.gen,
            found_gen: 0,
        })?;
        let mut guard = slot.value.write();
        let found = slot.gen.load(Ordering::SeqCst);
        if found != r.gen {
            return Err(UafError {
                slot: r.index,
                expected_gen: r.gen,
                found_gen: found,
            });
        }
        let value = guard.take().ok_or(UafError {
            slot: r.index,
            expected_gen: r.gen,
            found_gen: found,
        })?;
        // Odd -> even: invalidate outstanding refs, then recycle.
        slot.gen.fetch_add(1, Ordering::SeqCst);
        drop(guard);
        self.free_list.lock().push(r.index);
        Ok(value)
    }

    /// Free the slot after an RCU grace period (the **ArckFS+** path):
    /// readers that hold a [`crate::Guard`] taken before this call continue
    /// to see the value; the slot is invalidated and recycled only once
    /// they have all exited their critical sections.
    pub fn free_deferred(self: &Arc<Self>, r: ArenaRef, rcu: &Arc<Rcu>) {
        let arena = Arc::clone(self);
        rcu.defer(move || {
            // The deferred destructor performs the real free. A failure here
            // means the slot was already freed (double free) — surface that
            // loudly in debug builds and ignore in release, matching kernel
            // RCU callbacks which must not fail.
            let res = arena.free(r);
            debug_assert!(
                res.is_ok(),
                "deferred free of stale ref at slot {}",
                r.index
            );
            let _ = res;
        });
    }

    /// Number of slots ever created (occupied + free-listed).
    pub fn capacity(&self) -> usize {
        self.slots.read().len()
    }

    /// Number of currently occupied slots.
    pub fn live(&self) -> usize {
        self.capacity() - self.free_list.lock().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_read_round_trip() {
        let a: Arena<String> = Arena::new();
        let r = a.insert("hello".to_string());
        assert_eq!(a.read(r, |s| s.clone()).unwrap(), "hello");
        assert_eq!(a.live(), 1);
    }

    #[test]
    fn free_detects_stale_reads() {
        let a: Arena<u32> = Arena::new();
        let r = a.insert(7);
        assert_eq!(a.free(r).unwrap(), 7);
        let err = a.read(r, |v| *v).unwrap_err();
        assert_eq!(err.slot, r.index);
        assert_eq!(err.expected_gen, 1);
        assert_eq!(err.found_gen, 2);
    }

    #[test]
    fn reuse_detects_aba() {
        let a: Arena<u32> = Arena::new();
        let r1 = a.insert(1);
        a.free(r1).unwrap();
        let r2 = a.insert(2);
        // Same slot, new generation.
        assert_eq!(r2.index, r1.index);
        assert_ne!(r2.gen, r1.gen);
        assert!(a.read(r1, |v| *v).is_err(), "stale ref after reuse");
        assert_eq!(a.read(r2, |v| *v).unwrap(), 2);
    }

    #[test]
    fn double_free_detected() {
        let a: Arena<u32> = Arena::new();
        let r = a.insert(1);
        a.free(r).unwrap();
        assert!(a.free(r).is_err());
    }

    #[test]
    fn update_works_and_respects_generation() {
        let a: Arena<Vec<u32>> = Arena::new();
        let r = a.insert(vec![1]);
        a.update(r, |v| v.push(2)).unwrap();
        assert_eq!(a.read(r, |v| v.clone()).unwrap(), vec![1, 2]);
        a.free(r).unwrap();
        assert!(a.update(r, |v| v.push(3)).is_err());
    }

    #[test]
    fn deferred_free_waits_for_guard() {
        let a: Arc<Arena<u32>> = Arc::new(Arena::new());
        let rcu = Rcu::new();
        let r = a.insert(42);
        let g = rcu.read_guard();
        a.free_deferred(r, &rcu);
        for _ in 0..10 {
            rcu.try_collect();
        }
        // The guard was taken before the free; the value must still be
        // readable — no use-after-free under RCU.
        assert_eq!(a.read(r, |v| *v).unwrap(), 42);
        drop(g);
        rcu.synchronize();
        assert!(
            a.read(r, |v| *v).is_err(),
            "slot reclaimed after grace period"
        );
        assert_eq!(a.live(), 0);
    }

    #[test]
    fn concurrent_insert_free_no_corruption() {
        let a: Arc<Arena<u64>> = Arc::new(Arena::new());
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let a = a.clone();
                s.spawn(move || {
                    for i in 0..500 {
                        let r = a.insert(t * 10_000 + i);
                        assert_eq!(a.read(r, |v| *v).unwrap(), t * 10_000 + i);
                        a.free(r).unwrap();
                    }
                });
            }
        });
        assert_eq!(a.live(), 0);
    }

    #[test]
    fn capacity_reuses_slots() {
        let a: Arena<u32> = Arena::new();
        let r1 = a.insert(1);
        a.free(r1).unwrap();
        let _r2 = a.insert(2);
        assert_eq!(a.capacity(), 1, "slot must be reused, not grown");
    }
}
