//! Log-bucketed latency histograms, HDR-style.
//!
//! Values (nanoseconds) are bucketed by octave with four linear
//! sub-buckets per octave, bounding the relative quantization error of a
//! reconstructed percentile to ~12.5% — plenty for latency distributions
//! that span six orders of magnitude. Two representations:
//!
//! * [`AtomicHistogram`] — the hot-path sink, fixed arrays of relaxed
//!   atomics, no allocation, safely shared across recording threads;
//! * [`Histogram`] — a plain-data snapshot that supports exact-count
//!   [`merge`](Histogram::merge) (bucket-wise addition, so merging is
//!   associative and commutative by construction) and percentile queries.

use std::sync::atomic::{AtomicU64, Ordering};

/// Sub-buckets per power-of-two octave.
const SUBS: usize = 4;
/// Octaves covered (u64 value range).
const OCTAVES: usize = 64;
/// Total bucket count.
pub(crate) const BUCKETS: usize = OCTAVES * SUBS;

/// Bucket index for a value: octave = position of the highest set bit,
/// sub-bucket = the next two bits below it.
fn bucket_index(v: u64) -> usize {
    let v = v.max(1);
    let octave = 63 - v.leading_zeros() as usize;
    let sub = if octave >= 2 {
        ((v >> (octave - 2)) & 0b11) as usize
    } else {
        // Octaves 0 and 1 have fewer than four distinct values; spread the
        // ones that exist across the low sub-buckets.
        (v & 0b11) as usize % SUBS
    };
    octave * SUBS + sub
}

/// Representative value for a bucket (midpoint of its sub-range).
fn bucket_value(idx: usize) -> u64 {
    let octave = idx / SUBS;
    let sub = (idx % SUBS) as u64;
    if octave < 2 {
        return (1u64 << octave) + sub;
    }
    let base = 1u64 << octave;
    let width = 1u64 << (octave - 2);
    base + sub * width + width / 2
}

/// Inclusive lower bound of a bucket's sub-range.
fn bucket_low(idx: usize) -> u64 {
    let octave = idx / SUBS;
    let sub = (idx % SUBS) as u64;
    if octave < 2 {
        return (1u64 << octave) + sub;
    }
    let base = 1u64 << octave;
    let width = 1u64 << (octave - 2);
    base + sub * width
}

/// Exclusive upper bound of a bucket's sub-range.
fn bucket_high(idx: usize) -> u64 {
    let octave = idx / SUBS;
    if octave < 2 {
        return bucket_low(idx) + 1;
    }
    let width = 1u64 << (octave - 2);
    bucket_low(idx).saturating_add(width)
}

/// Shared, lock-free histogram sink (relaxed atomics throughout).
pub(crate) struct AtomicHistogram {
    counts: Box<[AtomicU64; BUCKETS]>,
    total: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl Default for AtomicHistogram {
    fn default() -> Self {
        AtomicHistogram {
            counts: Box::new(std::array::from_fn(|_| AtomicU64::new(0))),
            total: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }
}

impl AtomicHistogram {
    pub(crate) fn record(&self, v: u64) {
        self.counts[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.total.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.min.fetch_min(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    pub(crate) fn reset(&self) {
        for c in self.counts.iter() {
            c.store(0, Ordering::Relaxed);
        }
        self.total.store(0, Ordering::Relaxed);
        self.sum.store(0, Ordering::Relaxed);
        self.min.store(u64::MAX, Ordering::Relaxed);
        self.max.store(0, Ordering::Relaxed);
    }

    pub(crate) fn snapshot(&self) -> Histogram {
        let mut h = Histogram::new();
        for (i, c) in self.counts.iter().enumerate() {
            h.counts[i] = c.load(Ordering::Relaxed);
        }
        h.total = self.total.load(Ordering::Relaxed);
        h.sum = self.sum.load(Ordering::Relaxed);
        h.min = self.min.load(Ordering::Relaxed);
        h.max = self.max.load(Ordering::Relaxed);
        h
    }
}

/// A mergeable, queryable latency histogram (nanoseconds).
#[derive(Clone)]
pub struct Histogram {
    counts: Box<[u64; BUCKETS]>,
    total: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Histogram")
            .field("count", &self.total)
            .field("mean", &self.mean())
            .field("p50", &self.percentile(50.0))
            .field("p99", &self.percentile(99.0))
            .field("min", &self.min())
            .field("max", &self.max())
            .finish()
    }
}

impl PartialEq for Histogram {
    fn eq(&self, other: &Self) -> bool {
        self.total == other.total
            && self.sum == other.sum
            && self.min == other.min
            && self.max == other.max
            && self.counts[..] == other.counts[..]
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Histogram {
        Histogram {
            counts: Box::new([0; BUCKETS]),
            total: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Record one value.
    pub fn record(&mut self, v: u64) {
        self.counts[bucket_index(v)] += 1;
        self.total += 1;
        self.sum = self.sum.saturating_add(v);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Fold another histogram into this one. Bucket-wise addition, so
    /// `a.merge(b).merge(c)` equals `a.merge(b.merge(c))` exactly.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += *b;
        }
        self.total += other.total;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Exact arithmetic mean (the sum is tracked exactly, not from
    /// buckets).
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.sum as f64 / self.total as f64
        }
    }

    /// Smallest recorded value (0 when empty).
    pub fn min(&self) -> u64 {
        if self.total == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest recorded value.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Approximate percentile (`p` in 0..=100), exact at the recorded
    /// extremes and within one sub-bucket (~12.5% relative) elsewhere.
    ///
    /// The rank is interpolated *within* its bucket: the value returned is
    /// the bucket's lower bound plus the rank's fractional position among
    /// the bucket's samples, scaled across the bucket's value range. A
    /// sparse tail (p999 landing on a handful of samples in one wide
    /// octave) therefore tracks where those samples sit instead of
    /// collapsing to the bucket floor.
    pub fn percentile(&self, p: f64) -> u64 {
        if self.total == 0 {
            return 0;
        }
        let rank = ((p / 100.0) * self.total as f64).ceil().max(1.0) as u64;
        if rank == 1 {
            return self.min;
        }
        if rank >= self.total {
            return self.max;
        }
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            if c == 0 {
                continue;
            }
            if seen + c >= rank {
                let lo = bucket_low(i) as f64;
                let hi = bucket_high(i) as f64;
                let pos = (rank - seen) as f64 / c as f64;
                let v = lo + pos * (hi - lo);
                return (v.round() as u64).clamp(self.min, self.max);
            }
            seen += c;
        }
        self.max
    }

    /// Non-empty buckets as `(upper_bound_ns, count)` pairs, ascending —
    /// the JSON export shape.
    pub fn buckets(&self) -> Vec<(u64, u64)> {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (bucket_value(i), c))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_monotone_and_bounded() {
        let mut last = 0usize;
        for shift in 0..64 {
            let v = 1u64 << shift;
            let idx = bucket_index(v);
            assert!(idx >= last, "index not monotone at {v}");
            assert!(idx < BUCKETS);
            last = idx;
        }
        assert!(bucket_index(u64::MAX) < BUCKETS);
        assert_eq!(bucket_index(0), bucket_index(1));
    }

    #[test]
    fn percentile_quantization_bounded() {
        let mut h = Histogram::new();
        for v in [100u64, 1_000, 10_000, 100_000, 1_000_000] {
            for _ in 0..100 {
                h.record(v);
            }
        }
        // p50 of this distribution is the middle value, 10_000.
        let p50 = h.percentile(50.0) as f64;
        assert!(
            (p50 - 10_000.0).abs() / 10_000.0 < 0.15,
            "p50 = {p50}, want ~10000"
        );
        assert_eq!(h.percentile(0.0), 100);
        assert_eq!(h.percentile(100.0), 1_000_000);
    }

    #[test]
    fn tail_percentiles_interpolate_within_bucket() {
        // 1000 samples spread uniformly inside ONE wide bucket (octave 19,
        // sub 3 covers [917504, 1048576)). Midpoint or floor answers
        // under-report the tail by ~6%; interpolation tracks the rank.
        let lo = 917_504u64;
        let mut h = Histogram::new();
        for i in 0..1000u64 {
            h.record(lo + i * 131);
        }
        let true_p999 = lo + 998 * 131; // the 999th smallest sample
        let p999 = h.percentile(99.9) as f64;
        assert!(
            (p999 - true_p999 as f64).abs() / (true_p999 as f64) < 0.01,
            "p999 = {p999}, want ~{true_p999}"
        );
        assert!(h.percentile(99.9) > h.percentile(50.0));
        assert!(h.percentile(50.0) > h.percentile(10.0));
    }

    #[test]
    fn sparse_tail_is_not_bucket_floor() {
        // Heavy head, ten far-out samples: the p999 rank lands among the
        // sparse tail samples and must read as a tail value — never the
        // head, never the bucket floor, never 0.
        let mut h = Histogram::new();
        for _ in 0..9_990 {
            h.record(1_000);
        }
        for _ in 0..10 {
            h.record(1_000_000);
        }
        assert_eq!(h.percentile(100.0), 1_000_000);
        let p999 = h.percentile(99.9);
        assert!(
            p999 > 100_000 && p999 <= 1_000_000,
            "p999 = {p999}, want in the sparse tail"
        );
        assert!(h.percentile(50.0) < 2_000);
    }

    #[test]
    fn merge_is_associative_and_commutative() {
        let mk = |seed: u64, n: u64| {
            let mut h = Histogram::new();
            let mut x = seed;
            for _ in 0..n {
                // xorshift so the three histograms hit different buckets
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                h.record(x >> 20);
            }
            h
        };
        let (a, b, c) = (mk(1, 500), mk(99, 300), mk(12345, 700));

        // (a + b) + c
        let mut left = a.clone();
        left.merge(&b);
        left.merge(&c);

        // a + (b + c)
        let mut bc = b.clone();
        bc.merge(&c);
        let mut right = a.clone();
        right.merge(&bc);

        assert_eq!(left, right, "merge must be associative");

        // b + a == a + b
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba, "merge must be commutative");

        assert_eq!(left.count(), 1500);
    }

    #[test]
    fn atomic_snapshot_round_trip() {
        let a = AtomicHistogram::default();
        for v in [5u64, 50, 500, 5000] {
            a.record(v);
        }
        let h = a.snapshot();
        assert_eq!(h.count(), 4);
        assert_eq!(h.min(), 5);
        assert_eq!(h.max(), 5000);
        assert!((h.mean() - 1388.75).abs() < 1e-9);
        a.reset();
        assert_eq!(a.snapshot().count(), 0);
    }

    #[test]
    fn empty_histogram_is_sane() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.percentile(99.0), 0);
        assert!(h.buckets().is_empty());
    }
}
