//! Per-thread recent-operation rings.
//!
//! Each recording thread owns one [`ThreadRing`]: a fixed array of slots
//! written round-robin, overwriting the oldest record once full. The
//! owning thread is the only writer; [`drain_into`](ThreadRing::drain_into)
//! may run concurrently from any thread (reports, test assertions), so
//! every slot is a bank of relaxed atomics guarded by a per-slot sequence
//! word — a seqlock in fully safe code. A reader that races an in-flight
//! overwrite simply skips that one slot; the writer never waits, never
//! locks and never allocates.

use std::sync::atomic::{AtomicU64, Ordering};

use pmem::StatsSnapshot;

/// Capacity of each per-thread ring (records; oldest overwritten first).
pub const RING_CAPACITY: usize = 1024;

/// One drained record: which operation, how long it took, what it did to
/// the device counters.
#[derive(Debug, Clone, Copy)]
pub struct OpRecord {
    /// `OpKind` discriminant (see [`crate::OpRecord::kind`]).
    pub kind_index: u8,
    /// Wall-clock latency in nanoseconds.
    pub latency_ns: u64,
    /// Device-counter delta attributed to this operation.
    pub delta: StatsSnapshot,
}

/// One slot: a sequence word plus the record flattened into atomics.
///
/// Writer protocol: seq -> odd, publish fields, seq -> even (next
/// generation). Readers accept a slot only if the sequence was even and
/// unchanged across the field reads.
#[derive(Default)]
struct Slot {
    seq: AtomicU64,
    kind: AtomicU64,
    latency_ns: AtomicU64,
    stores: AtomicU64,
    bytes_written: AtomicU64,
    loads: AtomicU64,
    bytes_read: AtomicU64,
    clwb: AtomicU64,
    ntstores: AtomicU64,
    sfences: AtomicU64,
    batch_closes: AtomicU64,
    batched_ops: AtomicU64,
}

pub(crate) struct ThreadRing {
    slots: Box<[Slot]>,
    /// Total records ever pushed; `writes % RING_CAPACITY` is the next slot.
    writes: AtomicU64,
}

impl ThreadRing {
    pub(crate) fn new() -> ThreadRing {
        ThreadRing {
            slots: (0..RING_CAPACITY).map(|_| Slot::default()).collect(),
            writes: AtomicU64::new(0),
        }
    }

    /// Append a record, overwriting the oldest when full. Called only by
    /// the owning thread; no allocation, no locks.
    pub(crate) fn push(&self, rec: OpRecord) {
        let n = self.writes.load(Ordering::Relaxed);
        let slot = &self.slots[(n % RING_CAPACITY as u64) as usize];
        let seq = slot.seq.load(Ordering::Relaxed);
        slot.seq.store(seq + 1, Ordering::Release); // odd: write in flight
        slot.kind.store(rec.kind_index as u64, Ordering::Relaxed);
        slot.latency_ns.store(rec.latency_ns, Ordering::Relaxed);
        slot.stores.store(rec.delta.stores, Ordering::Relaxed);
        slot.bytes_written
            .store(rec.delta.bytes_written, Ordering::Relaxed);
        slot.loads.store(rec.delta.loads, Ordering::Relaxed);
        slot.bytes_read.store(rec.delta.bytes_read, Ordering::Relaxed);
        slot.clwb.store(rec.delta.clwb, Ordering::Relaxed);
        slot.ntstores.store(rec.delta.ntstores, Ordering::Relaxed);
        slot.sfences.store(rec.delta.sfences, Ordering::Relaxed);
        slot.batch_closes
            .store(rec.delta.batch_closes, Ordering::Relaxed);
        slot.batched_ops
            .store(rec.delta.batched_ops, Ordering::Relaxed);
        slot.seq.store(seq + 2, Ordering::Release); // even: published
        self.writes.store(n + 1, Ordering::Release);
    }

    /// Reset to empty (drops all records; racing pushes may survive).
    pub(crate) fn reset(&self) {
        self.writes.store(0, Ordering::Release);
        for slot in self.slots.iter() {
            let seq = slot.seq.load(Ordering::Relaxed);
            slot.seq.store(seq + 2, Ordering::Release);
        }
    }

    /// Copy the currently retained records into `out`, oldest first.
    /// Slots that race a concurrent overwrite are skipped.
    pub(crate) fn drain_into(&self, out: &mut Vec<OpRecord>) {
        let writes = self.writes.load(Ordering::Acquire);
        let start = writes.saturating_sub(RING_CAPACITY as u64);
        for n in start..writes {
            let slot = &self.slots[(n % RING_CAPACITY as u64) as usize];
            let seq1 = slot.seq.load(Ordering::Acquire);
            if seq1 % 2 == 1 {
                continue; // write in flight
            }
            let rec = OpRecord {
                kind_index: slot.kind.load(Ordering::Relaxed) as u8,
                latency_ns: slot.latency_ns.load(Ordering::Relaxed),
                delta: StatsSnapshot {
                    stores: slot.stores.load(Ordering::Relaxed),
                    bytes_written: slot.bytes_written.load(Ordering::Relaxed),
                    loads: slot.loads.load(Ordering::Relaxed),
                    bytes_read: slot.bytes_read.load(Ordering::Relaxed),
                    clwb: slot.clwb.load(Ordering::Relaxed),
                    ntstores: slot.ntstores.load(Ordering::Relaxed),
                    sfences: slot.sfences.load(Ordering::Relaxed),
                    batch_closes: slot.batch_closes.load(Ordering::Relaxed),
                    batched_ops: slot.batched_ops.load(Ordering::Relaxed),
                },
            };
            if slot.seq.load(Ordering::Acquire) == seq1 {
                out.push(rec);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(i: u64) -> OpRecord {
        OpRecord {
            kind_index: (i % 17) as u8,
            latency_ns: i,
            delta: StatsSnapshot {
                sfences: i,
                ..Default::default()
            },
        }
    }

    #[test]
    fn keeps_everything_under_capacity() {
        let r = ThreadRing::new();
        for i in 0..10 {
            r.push(rec(i));
        }
        let mut out = Vec::new();
        r.drain_into(&mut out);
        assert_eq!(out.len(), 10);
        assert_eq!(out[0].latency_ns, 0);
        assert_eq!(out[9].latency_ns, 9);
    }

    #[test]
    fn overwrites_oldest_when_full() {
        let r = ThreadRing::new();
        let n = RING_CAPACITY as u64 + 100;
        for i in 0..n {
            r.push(rec(i));
        }
        let mut out = Vec::new();
        r.drain_into(&mut out);
        assert_eq!(out.len(), RING_CAPACITY);
        // The first 100 records were overwritten; retained window is
        // [100, n), oldest first.
        assert_eq!(out[0].latency_ns, 100);
        assert_eq!(out.last().unwrap().latency_ns, n - 1);
        assert_eq!(out.last().unwrap().delta.sfences, n - 1);
    }

    #[test]
    fn reset_empties_ring() {
        let r = ThreadRing::new();
        for i in 0..50 {
            r.push(rec(i));
        }
        r.reset();
        let mut out = Vec::new();
        r.drain_into(&mut out);
        assert!(out.is_empty());
        // And the ring keeps working after reset.
        r.push(rec(7));
        r.drain_into(&mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].latency_ns, 7);
    }

    #[test]
    fn concurrent_drain_never_sees_torn_records() {
        use std::sync::Arc;
        let r = Arc::new(ThreadRing::new());
        let writer = {
            let r = Arc::clone(&r);
            std::thread::spawn(move || {
                for i in 0..200_000u64 {
                    // latency_ns and sfences always pushed equal: a torn
                    // read would surface as a mismatch.
                    r.push(OpRecord {
                        kind_index: 0,
                        latency_ns: i,
                        delta: StatsSnapshot {
                            sfences: i,
                            ..Default::default()
                        },
                    });
                }
            })
        };
        let mut out = Vec::new();
        for _ in 0..50 {
            out.clear();
            r.drain_into(&mut out);
            for rec in &out {
                assert_eq!(
                    rec.latency_ns, rec.delta.sfences,
                    "torn record surfaced from concurrent drain"
                );
            }
        }
        writer.join().unwrap();
    }
}
