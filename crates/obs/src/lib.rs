#![warn(missing_docs)]

//! Operation-level tracing and metrics.
//!
//! The persistent-memory emulator counts flushes, fences and bytes at
//! *device* granularity ([`pmem::PmemStats`]), which is exactly the
//! granularity at which the paper's §4.2 missing-fence bug is invisible:
//! one extra `sfence` per *create* disappears into a device-wide total.
//! Persistence-debugging tools in the literature (WITCHER, Chipmunk) get
//! their power from **attributing** persistence events to the file-system
//! operation that issued them. This crate does that for the whole
//! workspace:
//!
//! * [`span`] wraps one file-system operation: it snapshots the device
//!   counters and the wall clock on entry and, on drop, records the delta
//!   and the latency under the operation's [`OpKind`];
//! * recording goes to (a) a global per-kind attribution table with
//!   log-bucketed latency [`Histogram`]s (all relaxed atomics, mergeable
//!   across threads by construction) and (b) a fixed-size per-thread ring
//!   of recent [`OpRecord`]s (overwrite-oldest, drained on demand —
//!   nothing allocates on the hot path);
//! * [`report`] aggregates everything into a [`Report`], exportable as
//!   JSON to `results/obs_<label>.json` for the benchmark trajectories.
//!
//! When disabled (the default) the entire facility costs a single relaxed
//! atomic load per operation — the same fast-path pattern as
//! `arckfs::inject::point`. Benchmarks that do not opt in pay nothing
//! measurable.
//!
//! Spans may nest (e.g. a `create` that internally performs a `commit`):
//! each span records **inclusively** — the outer span's delta contains the
//! inner span's work. Attribution tables therefore answer "what does one
//! *call* of this operation cost end-to-end", which is the quantity the
//! paper's Table 1 reasons about.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock, Weak};
use std::time::Instant;

use pmem::{PmemStats, StatsSnapshot};

mod hist;
mod ring;

pub use hist::Histogram;
pub use ring::{OpRecord, RING_CAPACITY};

/// The operation vocabulary spans are attributed to.
///
/// Covers the `vfs::FileSystem` surface plus the trusted-entry operations
/// ArckFS-class systems route through the kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum OpKind {
    /// `create`
    Create = 0,
    /// `open`
    Open = 1,
    /// `close`
    Close = 2,
    /// `read_at`
    Read = 3,
    /// `write_at`
    Write = 4,
    /// `append`
    Append = 5,
    /// `fsync`
    Fsync = 6,
    /// `truncate`
    Truncate = 7,
    /// `unlink`
    Unlink = 8,
    /// `mkdir`
    Mkdir = 9,
    /// `rmdir`
    Rmdir = 10,
    /// `rename`
    Rename = 11,
    /// `readdir`
    Readdir = 12,
    /// `stat`
    Stat = 13,
    /// Trusted-entry: commit/verify a directory through the kernel.
    Commit = 14,
    /// Trusted-entry: release an inode back to the kernel.
    Release = 15,
    /// Anything else (custom LibFS operations, maintenance).
    Other = 16,
}

/// Number of [`OpKind`] variants (sizes the attribution tables).
pub const OP_KIND_COUNT: usize = 17;

impl OpKind {
    /// Every kind, in discriminant order.
    pub const ALL: [OpKind; OP_KIND_COUNT] = [
        OpKind::Create,
        OpKind::Open,
        OpKind::Close,
        OpKind::Read,
        OpKind::Write,
        OpKind::Append,
        OpKind::Fsync,
        OpKind::Truncate,
        OpKind::Unlink,
        OpKind::Mkdir,
        OpKind::Rmdir,
        OpKind::Rename,
        OpKind::Readdir,
        OpKind::Stat,
        OpKind::Commit,
        OpKind::Release,
        OpKind::Other,
    ];

    /// Stable lower-case name used in reports and JSON.
    pub fn name(&self) -> &'static str {
        match self {
            OpKind::Create => "create",
            OpKind::Open => "open",
            OpKind::Close => "close",
            OpKind::Read => "read",
            OpKind::Write => "write",
            OpKind::Append => "append",
            OpKind::Fsync => "fsync",
            OpKind::Truncate => "truncate",
            OpKind::Unlink => "unlink",
            OpKind::Mkdir => "mkdir",
            OpKind::Rmdir => "rmdir",
            OpKind::Rename => "rename",
            OpKind::Readdir => "readdir",
            OpKind::Stat => "stat",
            OpKind::Commit => "commit",
            OpKind::Release => "release",
            OpKind::Other => "other",
        }
    }

    fn from_index(i: u8) -> OpKind {
        OpKind::ALL
            .get(i as usize)
            .copied()
            .unwrap_or(OpKind::Other)
    }
}

/// Global observability switch. Relaxed load on the fast path, like
/// `inject::ARMED`: when disabled, [`span`] is one load and one branch.
static ENABLED: AtomicBool = AtomicBool::new(false);

/// Turn recording on (process-wide).
pub fn enable() {
    ENABLED.store(true, Ordering::SeqCst);
}

/// Turn recording off (process-wide). Existing data is kept until
/// [`reset`].
pub fn disable() {
    ENABLED.store(false, Ordering::SeqCst);
}

/// Whether recording is currently on.
pub fn is_enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Run `f` with observability enabled, restoring the previous state after.
pub fn enabled_scope<T>(f: impl FnOnce() -> T) -> T {
    let was = ENABLED.swap(true, Ordering::SeqCst);
    let out = f();
    ENABLED.store(was, Ordering::SeqCst);
    out
}

// ---------------------------------------------------------------------------
// Attribution tables
// ---------------------------------------------------------------------------

/// Per-kind totals, all relaxed atomics (statistics, not synchronization).
#[derive(Default)]
struct KindCell {
    ops: AtomicU64,
    lat: hist::AtomicHistogram,
    stores: AtomicU64,
    bytes_written: AtomicU64,
    loads: AtomicU64,
    bytes_read: AtomicU64,
    clwb: AtomicU64,
    ntstores: AtomicU64,
    sfences: AtomicU64,
    batch_closes: AtomicU64,
    batched_ops: AtomicU64,
    dcache_hits: AtomicU64,
    dcache_misses: AtomicU64,
}

struct Tables {
    kinds: [KindCell; OP_KIND_COUNT],
    rings: Mutex<Vec<Weak<ring::ThreadRing>>>,
}

fn tables() -> &'static Tables {
    static TABLES: OnceLock<Tables> = OnceLock::new();
    TABLES.get_or_init(|| Tables {
        kinds: Default::default(),
        rings: Mutex::new(Vec::new()),
    })
}

thread_local! {
    static THREAD_RING: std::sync::Arc<ring::ThreadRing> = {
        let r = std::sync::Arc::new(ring::ThreadRing::new());
        let mut regs = tables().rings.lock().unwrap_or_else(|e| e.into_inner());
        regs.retain(|w| w.strong_count() > 0);
        regs.push(std::sync::Arc::downgrade(&r));
        r
    };

    /// Stack of in-flight span kinds on this thread, so events raised deep
    /// inside an operation (dentry-cache hits/misses) can be attributed to
    /// the innermost enclosing operation without threading the kind
    /// through every call signature.
    static KIND_STACK: std::cell::RefCell<Vec<u8>> = const { std::cell::RefCell::new(Vec::new()) };
}

/// The innermost in-flight span's kind on this thread, or [`OpKind::Other`]
/// when no span is active.
pub fn current_kind() -> OpKind {
    KIND_STACK.with(|s| {
        s.borrow()
            .last()
            .map(|i| OpKind::from_index(*i))
            .unwrap_or(OpKind::Other)
    })
}

/// Record a dentry-cache lookup outcome, attributed to the innermost
/// in-flight span's kind (see [`current_kind`]). One relaxed load when
/// observability is disabled.
#[inline]
pub fn dcache_event(hit: bool) {
    if !ENABLED.load(Ordering::Relaxed) {
        return;
    }
    let cell = &tables().kinds[current_kind() as usize];
    if hit {
        cell.dcache_hits.fetch_add(1, Ordering::Relaxed);
    } else {
        cell.dcache_misses.fetch_add(1, Ordering::Relaxed);
    }
}

fn record(kind: OpKind, latency_ns: u64, delta: &StatsSnapshot) {
    let cell = &tables().kinds[kind as usize];
    cell.ops.fetch_add(1, Ordering::Relaxed);
    cell.lat.record(latency_ns);
    cell.stores.fetch_add(delta.stores, Ordering::Relaxed);
    cell.bytes_written
        .fetch_add(delta.bytes_written, Ordering::Relaxed);
    cell.loads.fetch_add(delta.loads, Ordering::Relaxed);
    cell.bytes_read.fetch_add(delta.bytes_read, Ordering::Relaxed);
    cell.clwb.fetch_add(delta.clwb, Ordering::Relaxed);
    cell.ntstores.fetch_add(delta.ntstores, Ordering::Relaxed);
    cell.sfences.fetch_add(delta.sfences, Ordering::Relaxed);
    cell.batch_closes
        .fetch_add(delta.batch_closes, Ordering::Relaxed);
    cell.batched_ops
        .fetch_add(delta.batched_ops, Ordering::Relaxed);
    THREAD_RING.with(|r| {
        r.push(OpRecord {
            kind_index: kind as u8,
            latency_ns,
            delta: *delta,
        })
    });
}

/// Clear every attribution table, histogram and ring.
pub fn reset() {
    let t = tables();
    for cell in &t.kinds {
        cell.ops.store(0, Ordering::Relaxed);
        cell.lat.reset();
        cell.stores.store(0, Ordering::Relaxed);
        cell.bytes_written.store(0, Ordering::Relaxed);
        cell.loads.store(0, Ordering::Relaxed);
        cell.bytes_read.store(0, Ordering::Relaxed);
        cell.clwb.store(0, Ordering::Relaxed);
        cell.ntstores.store(0, Ordering::Relaxed);
        cell.sfences.store(0, Ordering::Relaxed);
        cell.batch_closes.store(0, Ordering::Relaxed);
        cell.batched_ops.store(0, Ordering::Relaxed);
        cell.dcache_hits.store(0, Ordering::Relaxed);
        cell.dcache_misses.store(0, Ordering::Relaxed);
    }
    let regs = t.rings.lock().unwrap_or_else(|e| e.into_inner());
    for w in regs.iter() {
        if let Some(r) = w.upgrade() {
            r.reset();
        }
    }
}

// ---------------------------------------------------------------------------
// Spans
// ---------------------------------------------------------------------------

/// An in-flight operation span. Created by [`span`]; records on drop.
///
/// Holds a reference to the device's [`PmemStats`] so the drop handler can
/// compute the counter delta without any allocation.
pub struct ObsSpan<'a> {
    inner: Option<SpanInner<'a>>,
}

struct SpanInner<'a> {
    kind: OpKind,
    stats: &'a PmemStats,
    before: StatsSnapshot,
    start: Instant,
}

/// Begin a span for one operation against the device owning `stats`.
///
/// Fast path: when observability is disabled this is a single relaxed
/// atomic load and returns an inert guard.
#[inline]
pub fn span<'a>(kind: OpKind, stats: &'a PmemStats) -> ObsSpan<'a> {
    if !ENABLED.load(Ordering::Relaxed) {
        return ObsSpan { inner: None };
    }
    KIND_STACK.with(|s| s.borrow_mut().push(kind as u8));
    ObsSpan {
        inner: Some(SpanInner {
            kind,
            stats,
            before: stats.snapshot(),
            start: Instant::now(),
        }),
    }
}

impl ObsSpan<'_> {
    /// Whether this span is live (observability was enabled at creation).
    pub fn is_recording(&self) -> bool {
        self.inner.is_some()
    }

    /// Drop without recording (e.g. on an error path that should not
    /// pollute latency statistics).
    pub fn cancel(mut self) {
        if self.inner.take().is_some() {
            KIND_STACK.with(|s| {
                s.borrow_mut().pop();
            });
        }
    }
}

impl Drop for ObsSpan<'_> {
    fn drop(&mut self) {
        if let Some(s) = self.inner.take() {
            KIND_STACK.with(|st| {
                st.borrow_mut().pop();
            });
            let latency_ns = s.start.elapsed().as_nanos() as u64;
            let delta = s.stats.snapshot().delta(&s.before);
            record(s.kind, latency_ns, &delta);
        }
    }
}

// ---------------------------------------------------------------------------
// Reports
// ---------------------------------------------------------------------------

/// Aggregated statistics for one [`OpKind`].
#[derive(Debug, Clone)]
pub struct KindReport {
    /// Which operation.
    pub kind: OpKind,
    /// Number of recorded spans.
    pub ops: u64,
    /// Latency histogram (nanoseconds).
    pub latency: Histogram,
    /// Total counter deltas attributed to this kind.
    pub totals: StatsSnapshot,
    /// Dentry-cache hits attributed to this kind (see
    /// [`dcache_event`]).
    pub dcache_hits: u64,
    /// Dentry-cache misses attributed to this kind.
    pub dcache_misses: u64,
}

impl KindReport {
    /// Dentry-cache hit rate for this kind, or `None` when the cache was
    /// never consulted under it.
    pub fn dcache_hit_rate(&self) -> Option<f64> {
        let total = self.dcache_hits + self.dcache_misses;
        (total > 0).then(|| self.dcache_hits as f64 / total as f64)
    }

    /// Store fences per operation.
    pub fn sfences_per_op(&self) -> f64 {
        self.totals.sfences as f64 / self.ops.max(1) as f64
    }

    /// Cache-line flushes per operation.
    pub fn clwb_per_op(&self) -> f64 {
        self.totals.clwb as f64 / self.ops.max(1) as f64
    }

    /// PM bytes written per operation.
    pub fn bytes_written_per_op(&self) -> f64 {
        self.totals.bytes_written as f64 / self.ops.max(1) as f64
    }

    /// Fraction of this kind's operations that joined a group-durability
    /// commit batch instead of fencing inline (0.0 with batching off).
    pub fn batched_fraction(&self) -> f64 {
        self.totals.batched_ops as f64 / self.ops.max(1) as f64
    }

    fn to_json(&self) -> serde_json::Value {
        let lat = &self.latency;
        serde_json::json!({
            "op": self.kind.name(),
            "count": self.ops,
            "latency_ns": serde_json::json!({
                "mean": lat.mean(),
                "p50": lat.percentile(50.0),
                "p95": lat.percentile(95.0),
                "p99": lat.percentile(99.0),
                "p999": lat.percentile(99.9),
                "min": lat.min(),
                "max": lat.max(),
            }),
            "per_op": serde_json::json!({
                "sfences": self.sfences_per_op(),
                "clwb": self.clwb_per_op(),
                "stores": self.totals.stores as f64 / self.ops.max(1) as f64,
                "ntstores": self.totals.ntstores as f64 / self.ops.max(1) as f64,
                "bytes_written": self.bytes_written_per_op(),
                "bytes_read": self.totals.bytes_read as f64 / self.ops.max(1) as f64,
            }),
            "totals": serde_json::json!({
                "sfences": self.totals.sfences,
                "clwb": self.totals.clwb,
                "stores": self.totals.stores,
                "ntstores": self.totals.ntstores,
                "bytes_written": self.totals.bytes_written,
                "loads": self.totals.loads,
                "bytes_read": self.totals.bytes_read,
            }),
            "dcache": serde_json::json!({
                "hits": self.dcache_hits,
                "misses": self.dcache_misses,
                "hit_rate": self.dcache_hit_rate(),
            }),
            // Group-durability attribution (DESIGN.md §8): comparing
            // per_op.sfences across rows with batched_fraction ~1 vs ~0
            // exposes the fence-coalescing win per operation kind.
            "batch": serde_json::json!({
                "batched_ops": self.totals.batched_ops,
                "batch_closes": self.totals.batch_closes,
                "batched_fraction": self.batched_fraction(),
                "sfences_per_op": self.sfences_per_op(),
            }),
        })
    }
}

/// A full point-in-time aggregation of the attribution tables.
#[derive(Debug, Clone, Default)]
pub struct Report {
    /// Per-kind rows, only kinds with at least one recorded span.
    pub kinds: Vec<KindReport>,
}

impl Report {
    /// Row for one kind, if recorded.
    pub fn kind(&self, kind: OpKind) -> Option<&KindReport> {
        self.kinds.iter().find(|k| k.kind == kind)
    }

    /// Fold another report into this one (e.g. per-cell reports of one
    /// benchmark row). Histograms merge bucket-wise; totals add.
    pub fn merge(&mut self, other: &Report) {
        for row in &other.kinds {
            match self.kinds.iter_mut().find(|k| k.kind == row.kind) {
                Some(mine) => {
                    mine.ops += row.ops;
                    mine.latency.merge(&row.latency);
                    mine.totals.stores += row.totals.stores;
                    mine.totals.bytes_written += row.totals.bytes_written;
                    mine.totals.loads += row.totals.loads;
                    mine.totals.bytes_read += row.totals.bytes_read;
                    mine.totals.clwb += row.totals.clwb;
                    mine.totals.ntstores += row.totals.ntstores;
                    mine.totals.sfences += row.totals.sfences;
                    mine.totals.batch_closes += row.totals.batch_closes;
                    mine.totals.batched_ops += row.totals.batched_ops;
                    mine.dcache_hits += row.dcache_hits;
                    mine.dcache_misses += row.dcache_misses;
                }
                None => self.kinds.push(row.clone()),
            }
        }
    }

    /// Serialize to the `results/obs_*.json` schema (documented in
    /// DESIGN.md).
    pub fn to_json(&self, label: &str) -> serde_json::Value {
        serde_json::json!({
            "schema": "obs-report-v1",
            "label": label,
            "ops": self.kinds.iter().map(|k| k.to_json()).collect::<Vec<_>>(),
        })
    }

    /// [`Report::to_json`] plus caller-supplied top-level extension blocks
    /// (e.g. `schedmc`'s coverage counters), merged into the same
    /// `obs-report-v1` object. Extension keys must not collide with the
    /// base schema (`schema`/`label`/`ops`); base keys win on collision.
    pub fn to_json_ext(
        &self,
        label: &str,
        extensions: &[(&str, serde_json::Value)],
    ) -> serde_json::Value {
        let mut v = self.to_json(label);
        if let serde_json::Value::Object(obj) = &mut v {
            for (key, value) in extensions {
                if obj.get(key).is_none() {
                    obj.insert((*key).to_string(), value.clone());
                }
            }
        }
        v
    }

    /// Write `results/obs_<label>.json` (best effort, like
    /// `bench::record_json`). Returns the path written.
    pub fn write_json(&self, label: &str) -> std::io::Result<String> {
        self.write_json_ext(label, &[])
    }

    /// [`Report::write_json`] with extension blocks ([`Report::to_json_ext`]).
    pub fn write_json_ext(
        &self,
        label: &str,
        extensions: &[(&str, serde_json::Value)],
    ) -> std::io::Result<String> {
        std::fs::create_dir_all("results")?;
        let path = format!("results/obs_{label}.json");
        let text = serde_json::to_string_pretty(&self.to_json_ext(label, extensions))
            .unwrap_or_else(|_| "{}".to_string());
        std::fs::write(&path, text + "\n")?;
        Ok(path)
    }
}

/// Aggregate the current attribution tables into a [`Report`].
pub fn report() -> Report {
    let t = tables();
    let mut kinds = Vec::new();
    for k in OpKind::ALL {
        let cell = &t.kinds[k as usize];
        let ops = cell.ops.load(Ordering::Relaxed);
        let dcache_hits = cell.dcache_hits.load(Ordering::Relaxed);
        let dcache_misses = cell.dcache_misses.load(Ordering::Relaxed);
        if ops == 0 && dcache_hits + dcache_misses == 0 {
            continue;
        }
        kinds.push(KindReport {
            kind: k,
            ops,
            latency: cell.lat.snapshot(),
            dcache_hits,
            dcache_misses,
            totals: StatsSnapshot {
                stores: cell.stores.load(Ordering::Relaxed),
                bytes_written: cell.bytes_written.load(Ordering::Relaxed),
                loads: cell.loads.load(Ordering::Relaxed),
                bytes_read: cell.bytes_read.load(Ordering::Relaxed),
                clwb: cell.clwb.load(Ordering::Relaxed),
                ntstores: cell.ntstores.load(Ordering::Relaxed),
                sfences: cell.sfences.load(Ordering::Relaxed),
                batch_closes: cell.batch_closes.load(Ordering::Relaxed),
                batched_ops: cell.batched_ops.load(Ordering::Relaxed),
            },
        });
    }
    Report { kinds }
}

/// Drain a snapshot of every thread's recent-operation ring, newest last
/// per thread. Records are tagged with their [`OpKind`] index; use
/// [`OpRecord::kind`].
pub fn recent_ops() -> Vec<OpRecord> {
    let regs = tables().rings.lock().unwrap_or_else(|e| e.into_inner());
    let mut out = Vec::new();
    for w in regs.iter() {
        if let Some(r) = w.upgrade() {
            r.drain_into(&mut out);
        }
    }
    out
}

impl OpRecord {
    /// The operation kind this record belongs to.
    pub fn kind(&self) -> OpKind {
        OpKind::from_index(self.kind_index)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn device_stats() -> &'static PmemStats {
        static S: OnceLock<PmemStats> = OnceLock::new();
        S.get_or_init(PmemStats::default)
    }

    // The global switch is process-wide, so tests that toggle it share one
    // lock to avoid interfering (cargo runs tests concurrently).
    fn serial() -> std::sync::MutexGuard<'static, ()> {
        static M: Mutex<()> = Mutex::new(());
        M.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Quantifies the disabled-path cost (run manually:
    /// `cargo test -p obs --release -- --ignored --nocapture`). The
    /// acceptance target is <2% regression on FS ops with observability
    /// off; a disabled span is one relaxed load, so its cost must be
    /// single-digit nanoseconds against multi-microsecond operations.
    #[test]
    #[ignore = "perf measurement, prints numbers; run manually in release"]
    fn disabled_span_cost_ns() {
        let _g = serial();
        disable();
        let dev = pmem::PmemDevice::new(1 << 16);
        const N: u64 = 10_000_000;
        let start = Instant::now();
        for _ in 0..N {
            let s = span(OpKind::Create, dev.stats());
            std::hint::black_box(&s);
        }
        let disabled_ns = start.elapsed().as_nanos() as f64 / N as f64;
        enable();
        let start = Instant::now();
        for _ in 0..N {
            let s = span(OpKind::Create, dev.stats());
            std::hint::black_box(&s);
        }
        let enabled_ns = start.elapsed().as_nanos() as f64 / N as f64;
        disable();
        reset();
        println!("span cost: disabled {disabled_ns:.1} ns, enabled {enabled_ns:.1} ns");
        assert!(
            disabled_ns < 50.0,
            "disabled span must stay in the nanoseconds ({disabled_ns:.1} ns)"
        );
    }

    #[test]
    fn disabled_span_records_nothing() {
        let _g = serial();
        disable();
        reset();
        {
            let _s = span(OpKind::Create, device_stats());
        }
        assert!(report().kind(OpKind::Create).is_none());
    }

    #[test]
    fn enabled_span_attributes_delta_and_latency() {
        let _g = serial();
        reset();
        enabled_scope(|| {
            let dev = pmem::PmemDevice::new(1 << 16);
            {
                let _s = span(OpKind::Mkdir, dev.stats());
                dev.write(0, &[1u8; 64]).unwrap();
                dev.clwb(0, 64).unwrap();
                dev.sfence();
            }
        });
        let rep = report();
        let row = rep.kind(OpKind::Mkdir).expect("recorded");
        assert_eq!(row.ops, 1);
        assert_eq!(row.totals.sfences, 1);
        assert_eq!(row.totals.bytes_written, 64);
        assert!(row.latency.count() == 1);
        reset();
    }

    #[test]
    fn span_nesting_is_inclusive() {
        let _g = serial();
        reset();
        enabled_scope(|| {
            let dev = pmem::PmemDevice::new(1 << 16);
            {
                let _outer = span(OpKind::Create, dev.stats());
                dev.sfence(); // outer-only work
                {
                    let _inner = span(OpKind::Commit, dev.stats());
                    dev.sfence();
                    dev.sfence();
                }
            }
        });
        let rep = report();
        let outer = rep.kind(OpKind::Create).expect("outer");
        let inner = rep.kind(OpKind::Commit).expect("inner");
        // Inner records its own two fences; outer records all three
        // (inclusive attribution).
        assert_eq!(inner.totals.sfences, 2);
        assert_eq!(outer.totals.sfences, 3);
        reset();
    }

    #[test]
    fn cancel_suppresses_recording() {
        let _g = serial();
        reset();
        enabled_scope(|| {
            let dev = pmem::PmemDevice::new(1 << 16);
            let s = span(OpKind::Rename, dev.stats());
            dev.sfence();
            s.cancel();
        });
        assert!(report().kind(OpKind::Rename).is_none());
        reset();
    }

    #[test]
    fn recent_ops_surface_ring_records() {
        let _g = serial();
        reset();
        enabled_scope(|| {
            let dev = pmem::PmemDevice::new(1 << 16);
            for _ in 0..5 {
                let _s = span(OpKind::Stat, dev.stats());
            }
        });
        let recents = recent_ops();
        let stats_ops = recents
            .iter()
            .filter(|r| r.kind() == OpKind::Stat)
            .count();
        assert!(stats_ops >= 5, "ring kept {stats_ops} stat records");
        reset();
    }

    #[test]
    fn dcache_events_attribute_to_innermost_span() {
        let _g = serial();
        reset();
        enabled_scope(|| {
            let dev = pmem::PmemDevice::new(1 << 16);
            {
                let _s = span(OpKind::Stat, dev.stats());
                dcache_event(true);
                dcache_event(true);
                dcache_event(false);
            }
            dcache_event(false); // outside any span → Other
        });
        let rep = report();
        let stat = rep.kind(OpKind::Stat).expect("stat row");
        assert_eq!((stat.dcache_hits, stat.dcache_misses), (2, 1));
        let rate = stat.dcache_hit_rate().expect("rate");
        assert!((rate - 2.0 / 3.0).abs() < 1e-9);
        let other = rep.kind(OpKind::Other).expect("other row");
        assert_eq!(other.dcache_misses, 1);
        let json = stat.to_json();
        assert!(json.get("dcache").is_some(), "JSON must carry dcache block");
        reset();
    }

    #[test]
    fn cancel_pops_kind_stack() {
        let _g = serial();
        reset();
        enabled_scope(|| {
            let dev = pmem::PmemDevice::new(1 << 16);
            let s = span(OpKind::Rename, dev.stats());
            s.cancel();
            assert_eq!(current_kind(), OpKind::Other);
        });
        reset();
    }

    #[test]
    fn report_json_schema_shape() {
        let _g = serial();
        reset();
        enabled_scope(|| {
            let dev = pmem::PmemDevice::new(1 << 16);
            let _s = span(OpKind::Open, dev.stats());
        });
        let v = report().to_json("unit");
        assert_eq!(
            v.get("schema").and_then(|s| s.as_str()),
            Some("obs-report-v1")
        );
        let ops = v.get("ops").and_then(|o| o.as_array()).expect("ops array");
        assert!(ops
            .iter()
            .any(|row| row.get("op").and_then(|n| n.as_str()) == Some("open")));
        reset();
    }
}
