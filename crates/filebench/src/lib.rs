#![warn(missing_docs)]

//! Filebench — the Webproxy and Varmail macrobenchmarks (§5.3).
//!
//! Two fileset modes reproduce the paper's methodology:
//!
//! * [`FilesetMode::PrivateDirs`] — the TRIO artifact's modification:
//!   every thread works in a private directory, sidestepping Filebench's
//!   whole-fileset lock but deviating from the original semantics.
//! * [`FilesetMode::SharedDir`] — **this paper's new framework**: all
//!   threads share one directory, and contention is kept low with
//!   fine-grained locks *on filenames* rather than a lock over the entire
//!   fileset ("we introduce fine-grained locks on filenames rather than
//!   locking the entire fileset").
//!
//! The flows follow the classic personalities:
//!
//! * **Varmail** (mail server): delete → create+append+fsync →
//!   open+read+append+fsync → open+read, 16 KiB mean appends.
//! * **Webproxy**: delete → create+append, then five open+read-whole-file
//!   iterations.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

use parking_lot::Mutex;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use vfs::{FileSystem, FsError, FsExt, FsResult, OpenFlags};

/// Which personality to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Personality {
    /// The Webproxy workload.
    Webproxy,
    /// The Varmail workload.
    Varmail,
}

impl Personality {
    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            Personality::Webproxy => "webproxy",
            Personality::Varmail => "varmail",
        }
    }
}

/// Fileset organization (see crate docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FilesetMode {
    /// One private directory (and fileset) per thread — the TRIO artifact's
    /// variant.
    PrivateDirs,
    /// One shared directory with per-filename locks — this paper's
    /// framework restoring the original Filebench semantics.
    SharedDir,
}

/// Workload parameters.
#[derive(Debug, Clone)]
pub struct FilebenchConfig {
    /// Personality.
    pub personality: Personality,
    /// Fileset organization.
    pub mode: FilesetMode,
    /// Files per fileset.
    pub nfiles: usize,
    /// Mean append size in bytes (Filebench's default is 16 KiB).
    pub append_size: usize,
}

impl FilebenchConfig {
    /// Paper-flavoured defaults (scaled filesets for the emulated device).
    pub fn new(personality: Personality, mode: FilesetMode) -> Self {
        FilebenchConfig {
            personality,
            mode,
            nfiles: 256,
            append_size: 16 * 1024,
        }
    }
}

/// Result of a filebench run.
#[derive(Debug, Clone)]
pub struct FbResult {
    /// Personality name.
    pub personality: &'static str,
    /// Fileset mode.
    pub mode: FilesetMode,
    /// File-system label.
    pub fs_name: String,
    /// Threads.
    pub threads: usize,
    /// Completed flow iterations.
    pub ops: u64,
    /// Wall-clock time.
    pub elapsed: Duration,
}

impl FbResult {
    /// Flow iterations per second (Filebench's "ops/s").
    ///
    /// A zero-duration run has no meaningful rate: dividing through would
    /// return `inf` and poison any downstream model calibration that
    /// averages rates, so it reports 0 instead (and trips a debug
    /// assertion, since a zero elapsed time means the harness never ran).
    pub fn ops_per_sec(&self) -> f64 {
        debug_assert!(
            !self.elapsed.is_zero(),
            "ops_per_sec on a zero-duration run"
        );
        let secs = self.elapsed.as_secs_f64();
        if secs <= 0.0 {
            return 0.0;
        }
        self.ops as f64 / secs
    }
}

/// The per-filename lock table of the shared-directory framework.
struct NameLocks {
    locks: Vec<Mutex<()>>,
}

impl NameLocks {
    fn new(n: usize) -> Self {
        NameLocks {
            locks: (0..n).map(|_| Mutex::new(())).collect(),
        }
    }

    fn lock_for(&self, name: &str) -> parking_lot::MutexGuard<'_, ()> {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        self.locks[(h as usize) % self.locks.len()].lock()
    }
}

fn dir_of(config: &FilebenchConfig, thread: usize) -> String {
    match config.mode {
        FilesetMode::PrivateDirs => format!("/fb/t{thread}"),
        FilesetMode::SharedDir => "/fb/shared".to_string(),
    }
}

/// Pre-create the fileset(s): directories plus roughly half the files
/// (Filebench's `prealloc 50`).
pub fn setup(fs: &dyn FileSystem, config: &FilebenchConfig, threads: usize) -> FsResult<()> {
    let data = vec![0x42u8; config.append_size];
    let dirs: Vec<String> = match config.mode {
        FilesetMode::PrivateDirs => (0..threads).map(|t| dir_of(config, t)).collect(),
        FilesetMode::SharedDir => vec![dir_of(config, 0)],
    };
    for dir in dirs {
        fs.mkdir_all(&dir)?;
        for i in 0..config.nfiles {
            if i % 2 == 0 {
                let path = format!("{dir}/f{i:05}");
                let fd = fs.open(&path, OpenFlags::rw().create())?;
                fs.write_at(fd, &data, 0)?;
                fs.close(fd)?;
            }
        }
    }
    Ok(())
}

/// One flow iteration. Files that a concurrent (or previous) delete removed
/// are recreated on demand, as Filebench's flowops do.
fn flow(
    fs: &dyn FileSystem,
    config: &FilebenchConfig,
    dir: &str,
    rng: &mut SmallRng,
    data: &[u8],
    buf: &mut [u8],
    locks: Option<&NameLocks>,
) -> FsResult<()> {
    let pick = |rng: &mut SmallRng| format!("{dir}/f{:05}", rng.gen_range(0..config.nfiles));

    let with_lock = |name: &str, f: &mut dyn FnMut() -> FsResult<()>| -> FsResult<()> {
        match locks {
            Some(l) => {
                let _g = l.lock_for(name);
                f()
            }
            None => f(),
        }
    };

    // 1. delete a random file (ignore if absent).
    let victim = pick(rng);
    with_lock(&victim, &mut || match fs.unlink(&victim) {
        Ok(()) | Err(FsError::NotFound) => Ok(()),
        Err(e) => Err(e),
    })?;

    // 2. create + append (+fsync for varmail).
    let fresh = pick(rng);
    with_lock(&fresh, &mut || {
        let fd = fs.open(&fresh, OpenFlags::rw().create())?;
        fs.append(fd, data)?;
        if config.personality == Personality::Varmail {
            fs.fsync(fd)?;
        }
        fs.close(fd)
    })?;

    match config.personality {
        Personality::Varmail => {
            // 3. open + read whole + append + fsync.
            let target = pick(rng);
            with_lock(&target, &mut || {
                let fd = match fs.open(&target, OpenFlags::rw()) {
                    Ok(fd) => fd,
                    Err(FsError::NotFound) => fs.open(&target, OpenFlags::rw().create())?,
                    Err(e) => return Err(e),
                };
                let mut off = 0u64;
                loop {
                    let n = fs.read_at(fd, buf, off)?;
                    if n == 0 {
                        break;
                    }
                    off += n as u64;
                }
                fs.append(fd, data)?;
                fs.fsync(fd)?;
                fs.close(fd)
            })?;
            // 4. open + read whole.
            let target = pick(rng);
            with_lock(&target, &mut || {
                let fd = match fs.open(&target, OpenFlags::read()) {
                    Ok(fd) => fd,
                    Err(FsError::NotFound) => return Ok(()),
                    Err(e) => return Err(e),
                };
                let mut off = 0u64;
                loop {
                    let n = fs.read_at(fd, buf, off)?;
                    if n == 0 {
                        break;
                    }
                    off += n as u64;
                }
                fs.close(fd)
            })?;
        }
        Personality::Webproxy => {
            // 3. five open + read-whole-file iterations.
            for _ in 0..5 {
                let target = pick(rng);
                with_lock(&target, &mut || {
                    let fd = match fs.open(&target, OpenFlags::read()) {
                        Ok(fd) => fd,
                        Err(FsError::NotFound) => return Ok(()),
                        Err(e) => return Err(e),
                    };
                    let mut off = 0u64;
                    loop {
                        let n = fs.read_at(fd, buf, off)?;
                        if n == 0 {
                            break;
                        }
                        off += n as u64;
                    }
                    fs.close(fd)
                })?;
            }
        }
    }
    Ok(())
}

/// Run the workload for `duration` with `threads` workers.
pub fn run(
    fs: Arc<dyn FileSystem>,
    config: FilebenchConfig,
    threads: usize,
    duration: Duration,
) -> FsResult<FbResult> {
    setup(fs.as_ref(), &config, threads)?;
    let locks = Arc::new(NameLocks::new(4096));
    let stop = Arc::new(AtomicBool::new(false));
    let total = Arc::new(AtomicU64::new(0));
    let barrier = Arc::new(Barrier::new(threads + 1));
    let error: Arc<Mutex<Option<FsError>>> = Arc::new(Mutex::new(None));

    let start = std::thread::scope(|s| {
        for t in 0..threads {
            let fs = fs.clone();
            let config = config.clone();
            let locks = locks.clone();
            let stop = stop.clone();
            let total = total.clone();
            let barrier = barrier.clone();
            let error = error.clone();
            s.spawn(move || {
                let dir = dir_of(&config, t);
                let mut rng = SmallRng::seed_from_u64(0xfb + t as u64);
                let data = vec![0x42u8; config.append_size];
                let mut buf = vec![0u8; 64 * 1024];
                let use_locks = config.mode == FilesetMode::SharedDir;
                barrier.wait();
                let mut local = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    let locks_ref = use_locks.then_some(locks.as_ref());
                    match flow(
                        fs.as_ref(),
                        &config,
                        &dir,
                        &mut rng,
                        &data,
                        &mut buf,
                        locks_ref,
                    ) {
                        Ok(()) => local += 1,
                        Err(e) => {
                            *error.lock() = Some(e);
                            break;
                        }
                    }
                }
                total.fetch_add(local, Ordering::Relaxed);
            });
        }
        barrier.wait();
        let start = Instant::now();
        std::thread::sleep(duration);
        stop.store(true, Ordering::Relaxed);
        start
    });
    let elapsed = start.elapsed();
    if let Some(e) = error.lock().take() {
        return Err(e);
    }
    Ok(FbResult {
        personality: config.personality.name(),
        mode: config.mode,
        fs_name: fs.fs_name().to_string(),
        threads,
        ops: total.load(Ordering::Relaxed),
        elapsed,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use parking_lot::RwLock;
    use std::collections::HashMap;

    /// Minimal in-memory FS for harness tests (the real file systems are
    /// exercised in the workspace integration tests and benches).
    #[derive(Default)]
    struct MemFs {
        files: RwLock<HashMap<String, Vec<u8>>>,
        dirs: RwLock<HashMap<String, ()>>,
        fds: RwLock<HashMap<u64, String>>,
        next: AtomicU64,
    }

    impl FileSystem for MemFs {
        fn fs_name(&self) -> &str {
            "memfs"
        }
        fn create(&self, path: &str) -> FsResult<vfs::Fd> {
            let mut f = self.files.write();
            if f.contains_key(path) {
                return Err(FsError::AlreadyExists);
            }
            f.insert(path.into(), Vec::new());
            drop(f);
            let id = self.next.fetch_add(1, Ordering::Relaxed);
            self.fds.write().insert(id, path.into());
            Ok(vfs::Fd(id))
        }
        fn open(&self, path: &str, flags: OpenFlags) -> FsResult<vfs::Fd> {
            if !self.files.read().contains_key(path) {
                if flags.create {
                    return self.create(path);
                }
                return Err(FsError::NotFound);
            }
            let id = self.next.fetch_add(1, Ordering::Relaxed);
            self.fds.write().insert(id, path.into());
            Ok(vfs::Fd(id))
        }
        fn close(&self, fd: vfs::Fd) -> FsResult<()> {
            self.fds
                .write()
                .remove(&fd.0)
                .map(|_| ())
                .ok_or(FsError::BadDescriptor)
        }
        fn read_at(&self, fd: vfs::Fd, buf: &mut [u8], off: u64) -> FsResult<usize> {
            let path = self
                .fds
                .read()
                .get(&fd.0)
                .cloned()
                .ok_or(FsError::BadDescriptor)?;
            let files = self.files.read();
            let data = files.get(&path).ok_or(FsError::NotFound)?;
            if off as usize >= data.len() {
                return Ok(0);
            }
            let n = buf.len().min(data.len() - off as usize);
            buf[..n].copy_from_slice(&data[off as usize..off as usize + n]);
            Ok(n)
        }
        fn write_at(&self, fd: vfs::Fd, buf: &[u8], off: u64) -> FsResult<usize> {
            let path = self
                .fds
                .read()
                .get(&fd.0)
                .cloned()
                .ok_or(FsError::BadDescriptor)?;
            let mut files = self.files.write();
            let data = files.get_mut(&path).ok_or(FsError::NotFound)?;
            let end = off as usize + buf.len();
            if data.len() < end {
                data.resize(end, 0);
            }
            data[off as usize..end].copy_from_slice(buf);
            Ok(buf.len())
        }
        fn append(&self, fd: vfs::Fd, buf: &[u8]) -> FsResult<u64> {
            let path = self
                .fds
                .read()
                .get(&fd.0)
                .cloned()
                .ok_or(FsError::BadDescriptor)?;
            let len = self.files.read().get(&path).map(|d| d.len()).unwrap_or(0);
            self.write_at(fd, buf, len as u64)?;
            Ok(len as u64)
        }
        fn fsync(&self, _fd: vfs::Fd) -> FsResult<()> {
            Ok(())
        }
        fn truncate(&self, _fd: vfs::Fd, _size: u64) -> FsResult<()> {
            Ok(())
        }
        fn unlink(&self, path: &str) -> FsResult<()> {
            self.files
                .write()
                .remove(path)
                .map(|_| ())
                .ok_or(FsError::NotFound)
        }
        fn mkdir(&self, path: &str) -> FsResult<()> {
            let mut d = self.dirs.write();
            if d.contains_key(path) {
                return Err(FsError::AlreadyExists);
            }
            d.insert(path.into(), ());
            Ok(())
        }
        fn rmdir(&self, _path: &str) -> FsResult<()> {
            Ok(())
        }
        fn rename(&self, from: &str, to: &str) -> FsResult<()> {
            let mut f = self.files.write();
            let v = f.remove(from).ok_or(FsError::NotFound)?;
            f.insert(to.into(), v);
            Ok(())
        }
        fn readdir(&self, _path: &str) -> FsResult<Vec<vfs::DirEntry>> {
            Ok(Vec::new())
        }
        fn stat(&self, path: &str) -> FsResult<vfs::Metadata> {
            let files = self.files.read();
            match files.get(path) {
                Some(d) => Ok(vfs::Metadata {
                    ino: 0,
                    file_type: vfs::FileType::Regular,
                    size: d.len() as u64,
                    nlink: 1,
                }),
                None => {
                    if self.dirs.read().contains_key(path) {
                        Ok(vfs::Metadata {
                            ino: 0,
                            file_type: vfs::FileType::Directory,
                            size: 0,
                            nlink: 2,
                        })
                    } else {
                        Err(FsError::NotFound)
                    }
                }
            }
        }
    }

    fn mem() -> Arc<dyn FileSystem> {
        Arc::new(MemFs::default())
    }

    #[test]
    fn varmail_private_runs() {
        let cfg = FilebenchConfig::new(Personality::Varmail, FilesetMode::PrivateDirs);
        let r = run(mem(), cfg, 2, Duration::from_millis(50)).unwrap();
        assert!(r.ops > 0);
        assert_eq!(r.personality, "varmail");
    }

    #[test]
    fn webproxy_shared_runs_with_name_locks() {
        let cfg = FilebenchConfig::new(Personality::Webproxy, FilesetMode::SharedDir);
        let r = run(mem(), cfg, 4, Duration::from_millis(50)).unwrap();
        assert!(r.ops > 0);
        assert_eq!(r.mode, FilesetMode::SharedDir);
    }

    #[test]
    fn name_locks_are_stable() {
        let l = NameLocks::new(16);
        // Same name always maps to the same lock (guard drop then re-lock).
        let g1 = l.lock_for("abc");
        drop(g1);
        let _g2 = l.lock_for("abc");
    }

    #[test]
    fn ops_per_sec_math() {
        let r = FbResult {
            personality: "varmail",
            mode: FilesetMode::SharedDir,
            fs_name: "x".into(),
            threads: 1,
            ops: 500,
            elapsed: Duration::from_millis(500),
        };
        assert!((r.ops_per_sec() - 1000.0).abs() < 1e-6);
    }

    #[test]
    fn zero_duration_run_reports_zero_not_inf() {
        let r = FbResult {
            personality: "varmail",
            mode: FilesetMode::SharedDir,
            fs_name: "x".into(),
            threads: 1,
            ops: 500,
            elapsed: Duration::ZERO,
        };
        if cfg!(debug_assertions) {
            // The debug assertion flags the broken harness loudly.
            let got = std::panic::catch_unwind(|| r.ops_per_sec());
            assert!(got.is_err(), "zero-duration run must trip debug_assert");
        } else {
            let rate = r.ops_per_sec();
            assert_eq!(rate, 0.0);
            assert!(rate.is_finite());
        }
    }
}
