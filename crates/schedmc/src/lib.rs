#![warn(missing_docs)]

//! Bounded stateless schedule exploration over the `arckfs` inject points.
//!
//! Every §4 concurrency bug in the paper is reproduced elsewhere in this
//! workspace by *one* hand-scripted interleaving (`inject::arm` plus a
//! single parked victim) — we only ever test the schedules we already
//! thought of. This crate closes that gap in the CHESS/Nidhugg style:
//! given a small set of concurrent operations, it enumerates **every**
//! interleaving of their schedule points up to a preemption bound and lets
//! oracles, not test authors, decide what is a bug.
//!
//! # How a single schedule runs
//!
//! [`explore`] mounts a fresh LibFS on a fresh (optionally store-tracked)
//! device, runs a fixed [`setup`]-built namespace, then spawns one
//! participant thread per [`Op`] under an [`arckfs::inject::Controller`].
//! Participants park at every `inject::point`; between grants the explorer
//! observes a quiesced system and picks which participant runs next. The
//! choice sequence *is* the schedule: replaying the same sequence replays
//! the same interleaving ([`replay`]).
//!
//! # Enumeration
//!
//! Stateless DFS over choice-sequence prefixes. Each run follows its
//! prefix, then takes the *default* schedule (keep running the last
//! granted thread; lowest tid otherwise) while recording every road not
//! taken as a new prefix, tagged with its preemption count. Prefixes are
//! explored cheapest-first, so the first failing schedule found carries
//! the fewest preemptions the bug needs — minimal by construction.
//!
//! # Oracles
//!
//! 1. **Crash states** — at every schedule point, [`crashmc::check_bounded`]
//!    enumerates (or samples) the crash images the Px86 persistency model
//!    admits and runs `trio::fsck` over each.
//! 2. **Post-run fsck** — after the ops complete and the LibFS unmounts,
//!    the final image must have no fatal findings.
//! 3. **Sequential specification** — the final name-keyed directory/file
//!    state must equal the final state of *some* serial order of the ops,
//!    and a path that `stat` resolves must agree with `readdir` membership
//!    (the dentry-cache coherence probe).
//!
//! Participant panics, fault-class errors ([`vfs::FsError::is_fault`],
//! `Corrupted`, `Internal`, a leaked `Released` sentinel), deadlocks and
//! runaway schedules are failures too ([`FailureKind`]).
//!
//! # Scope
//!
//! The op vocabulary ([`Op::ALL`]) gives `unlink` its own target file,
//! separate from `append`'s: the LibFS (faithfully to the artifact) keeps
//! no open-descriptor refcount, so unlink-while-open is a known semantic
//! gap, not a schedule-dependent race worth exploring. Blocked-thread
//! resumption is the other caveat: a participant that blocks on a real
//! lock held by a parked participant is detected by grace timeout and,
//! once the lock frees, runs concurrently with the granted thread until
//! its next point — schedules around lock handoff are explored slightly
//! coarser than point granularity.

use std::collections::{BTreeMap, BTreeSet};
use std::time::{Duration, Instant};

use arckfs::inject::Controller;
use arckfs::{Config, LibFs};
use pmem::PmemDevice;
use vfs::{FileSystem, FileType, FsError, FsExt, FsResult, OpenFlags};

pub mod fuzz;

/// Device size every exploration run (concurrent and serial-spec) uses.
pub const DEVICE_LEN: usize = 4 << 20;

/// Cap on failures collected per explored op combination: once a space is
/// this broken, more examples add noise, not information.
const MAX_FAILURES_PER_SPACE: usize = 4;

// ---- op vocabulary ---------------------------------------------------------

/// One concurrent operation the explorer can schedule. Each op is a small
/// self-contained closure over the fixed [`setup`] namespace; per-thread
/// identity (`tid`) picks distinct append payloads so overlapping writes
/// are visible in the final state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Op {
    /// `create("/d/n")` — racing creates arbitrate on one name.
    Create,
    /// `unlink("/d/u0")` — a pre-created file of its own (see module docs).
    Unlink,
    /// `rename("/d/old", "/d/new")`.
    Rename,
    /// `release_path("/d")` — the §4.3 voluntary inode release.
    Release,
    /// `create("/d/rv")` — forces the §4.3 revival path when racing a
    /// release of `/d`.
    Revive,
    /// `open_dir("/d")` + `open_at(.., "old")` — drives the dcache fill.
    OpenAt,
    /// `O_APPEND` open of `/d/f0` + `append` of a tid-tagged payload.
    Append,
    /// `write_file("/d/w", …)` of a tid-tagged multi-page payload, sized
    /// to ride the delegation rings when the config under test enables
    /// them ([`explore_delegate_pairs`]); inline non-temporal stores
    /// otherwise.
    WriteDelegated,
    /// `write_vectored_at` of a tid-tagged payload into `/d/f0` at a
    /// tid-distinct block-aligned offset — two disjoint ranged writers on
    /// one shared file, driving the `file.write.range_lock` and
    /// `file.write.extent_insert` windows when the config under test
    /// enables the ranged data path ([`explore_range_pairs`]).
    WriteRanged,
    /// `fallocate(fd, 1024, 2048)` on `/d/f0` — preallocation racing the
    /// data ops; a no-op when the file system reports it unsupported.
    Fallocate,
    /// `flush_batch()` — the explicit group-durability close (ISSUE 4).
    /// A no-op unless the config under test enables batching.
    FlushBatch,
    /// `create("/d/nb")` — a create on its own name, meant to ride an
    /// open commit batch and race the ops that force its close.
    CreateBatched,
}

impl Op {
    /// The whole vocabulary, in a fixed order. The batch ops come last
    /// so budget truncation of a sweep sheds the newest pairs first.
    pub const ALL: [Op; 12] = [
        Op::Create,
        Op::Unlink,
        Op::Rename,
        Op::Release,
        Op::Revive,
        Op::OpenAt,
        Op::Append,
        Op::WriteDelegated,
        Op::WriteRanged,
        Op::Fallocate,
        Op::FlushBatch,
        Op::CreateBatched,
    ];

    /// The ops that exercise the ranged shared-file data path: the
    /// disjoint vectored writer and the preallocator.
    pub const RANGED: [Op; 2] = [Op::WriteRanged, Op::Fallocate];

    /// The ops that drive a batch close: the explicit flush and the
    /// batched create whose visibility other ops can force.
    pub const BATCH: [Op; 2] = [Op::FlushBatch, Op::CreateBatched];

    /// Short name (participant label, report rows).
    pub fn name(self) -> &'static str {
        match self {
            Op::Create => "create",
            Op::Unlink => "unlink",
            Op::Rename => "rename",
            Op::Release => "release",
            Op::Revive => "revive",
            Op::OpenAt => "open_at",
            Op::Append => "append",
            Op::WriteDelegated => "write_delegated",
            Op::WriteRanged => "write_ranged",
            Op::Fallocate => "fallocate",
            Op::FlushBatch => "flush_batch",
            Op::CreateBatched => "create_batched",
        }
    }

    /// The payload `Op::Append` writes for participant `tid`.
    pub fn append_payload(tid: usize) -> Vec<u8> {
        vec![b'a' + (tid as u8 % 26); 24]
    }

    /// The payload `Op::WriteDelegated` writes for participant `tid`:
    /// three pages, so the write spans several delegation chunks.
    pub fn delegated_payload(tid: usize) -> Vec<u8> {
        vec![b'0' + (tid as u8 % 10); 12 * 1024]
    }

    /// The payload `Op::WriteRanged` writes for participant `tid`.
    pub fn ranged_payload(tid: usize) -> Vec<u8> {
        vec![b'A' + (tid as u8 % 26); 1024]
    }

    /// The offset `Op::WriteRanged` writes at for participant `tid`:
    /// block-aligned and tid-distinct, so two ranged writers touch
    /// disjoint blocks of the shared `/d/f0` and every serial order
    /// lands the same final image.
    pub fn ranged_offset(tid: usize) -> u64 {
        4096 * (tid as u64 + 1)
    }

    fn run(self, fs: &LibFs, tid: usize) -> FsResult<()> {
        match self {
            Op::Create => {
                let fd = fs.create("/d/n")?;
                fs.close(fd)
            }
            Op::Unlink => fs.unlink("/d/u0"),
            Op::Rename => fs.rename("/d/old", "/d/new"),
            Op::Release => fs.release_path("/d"),
            Op::Revive => {
                let fd = fs.create("/d/rv")?;
                fs.close(fd)
            }
            Op::OpenAt => {
                let dirfd = fs.open_dir("/d")?;
                let r = match fs.open_at(dirfd, "old", OpenFlags::read()) {
                    Ok(fd) => fs.close(fd),
                    Err(FsError::NotFound) => Ok(()), // lost to a rename: legal
                    Err(e) => Err(e),
                };
                let c = fs.close(dirfd);
                r.and(c)
            }
            Op::Append => {
                let fd = fs.open("/d/f0", OpenFlags::empty().append())?;
                let r = fs.append(fd, &Op::append_payload(tid)).map(|_| ());
                let c = fs.close(fd);
                r.and(c)
            }
            Op::WriteDelegated => fs.write_file("/d/w", &Op::delegated_payload(tid)),
            Op::WriteRanged => {
                let fd = fs.open("/d/f0", OpenFlags::empty().write())?;
                let payload = Op::ranged_payload(tid);
                let (head, tail) = payload.split_at(payload.len() / 2);
                let r = fs
                    .write_vectored_at(fd, &[head, tail], Op::ranged_offset(tid))
                    .map(|_| ());
                let c = fs.close(fd);
                r.and(c)
            }
            Op::Fallocate => {
                let fd = fs.open("/d/f0", OpenFlags::empty().write())?;
                let r = match fs.fallocate(fd, 1024, 2048) {
                    Err(FsError::Unsupported(_)) => Ok(()),
                    r => r,
                };
                let c = fs.close(fd);
                r.and(c)
            }
            Op::FlushBatch => {
                fs.flush_batch();
                Ok(())
            }
            Op::CreateBatched => {
                let fd = fs.create("/d/nb")?;
                fs.close(fd)
            }
        }
    }
}

/// Build the fixed pre-run namespace every op targets: `/d` with `f0`
/// (content `b"base."`), `old`, and `u0`.
pub fn setup(fs: &LibFs) -> FsResult<()> {
    fs.mkdir("/d")?;
    fs.write_file("/d/f0", b"base.")?;
    for name in ["/d/old", "/d/u0"] {
        let fd = fs.create(name)?;
        fs.close(fd)?;
    }
    // Quiesce any open commit batch: the racing ops start from a
    // known-durable baseline (the crash oracle persists it wholesale),
    // and only *their* batches can be open mid-schedule.
    fs.sync()
}

// ---- options ---------------------------------------------------------------

/// Exploration parameters. [`ExploreOpts::quick`] and [`ExploreOpts::deep`]
/// read the `ARCKFS_SCHEDMC_*` environment knobs documented in the README.
#[derive(Debug, Clone)]
pub struct ExploreOpts {
    /// Maximum preemptions per schedule (CHESS-style bound).
    pub preemption_bound: usize,
    /// Cap on schedules executed per [`explore`] call.
    pub max_schedules: usize,
    /// Cap on decisions per schedule (runaway/livelock guard).
    pub max_steps: usize,
    /// Quiesce grace before a busy participant is classified blocked.
    pub grace: Duration,
    /// Run the crash-state oracle at every schedule point (requires the
    /// tracked device the explorer then allocates).
    pub crash_oracle: bool,
    /// Crash spaces at most this large are enumerated exhaustively.
    pub crash_exhaustive_limit: u64,
    /// Samples drawn from larger crash spaces.
    pub crash_samples: usize,
    /// Seed for crash-state sampling (recorded in failures for replay).
    pub seed: u64,
    /// Wall-clock budget for the whole exploration; `None` = unbounded.
    pub budget: Option<Duration>,
    /// LibFS configuration under test.
    pub config: Config,
}

pub(crate) fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

impl ExploreOpts {
    /// The CI quick mode: preemption bound 2, seeded, time-budgeted to
    /// finish in well under a minute on the fully patched config.
    pub fn quick() -> ExploreOpts {
        ExploreOpts {
            preemption_bound: env_u64("ARCKFS_SCHEDMC_BOUND", 2) as usize,
            max_schedules: env_u64("ARCKFS_SCHEDMC_MAX_SCHEDULES", 256) as usize,
            max_steps: 64,
            grace: Duration::from_millis(env_u64("ARCKFS_SCHEDMC_GRACE_MS", 10)),
            crash_oracle: true,
            crash_exhaustive_limit: 32,
            crash_samples: env_u64("ARCKFS_SCHEDMC_SAMPLES", 8) as usize,
            seed: env_u64("ARCKFS_SCHEDMC_SEED", 0xa5c3),
            budget: Some(Duration::from_millis(env_u64(
                "ARCKFS_SCHEDMC_BUDGET_MS",
                45_000,
            ))),
            config: Config::arckfs_plus(),
        }
    }

    /// The deep sweep (`ARCKFS_SCHEDMC_DEEP=1`): higher bound, more
    /// schedules and crash samples, five-minute default budget.
    pub fn deep() -> ExploreOpts {
        ExploreOpts {
            preemption_bound: env_u64("ARCKFS_SCHEDMC_BOUND", 3) as usize,
            max_schedules: env_u64("ARCKFS_SCHEDMC_MAX_SCHEDULES", 4096) as usize,
            crash_exhaustive_limit: 64,
            crash_samples: env_u64("ARCKFS_SCHEDMC_SAMPLES", 16) as usize,
            budget: Some(Duration::from_millis(env_u64(
                "ARCKFS_SCHEDMC_BUDGET_MS",
                300_000,
            ))),
            ..ExploreOpts::quick()
        }
    }
}

// ---- outcomes --------------------------------------------------------------

/// How a schedule failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailureKind {
    /// Post-run fsck found a fatal consistency violation.
    FsckFatal,
    /// A crash state reachable at a schedule point failed fsck.
    CrashInconsistent,
    /// Final state matches no serial order of the ops.
    SpecDivergence,
    /// `stat` and `readdir` disagreed about a name (stale dcache lie).
    CacheIncoherence,
    /// An op returned a fault-class error.
    OpFault,
    /// A participant panicked.
    OpPanicked,
    /// No participant could be scheduled but not all finished.
    Deadlock,
    /// The schedule exceeded [`ExploreOpts::max_steps`] decisions.
    Diverged,
    /// A mined invariant that had been promoted to an oracle was violated
    /// (fuzzing mode only; see [`fuzz`]).
    InvariantViolated,
}

impl FailureKind {
    /// Stable string form (JSON reports, test assertions).
    pub fn name(self) -> &'static str {
        match self {
            FailureKind::FsckFatal => "fsck_fatal",
            FailureKind::CrashInconsistent => "crash_inconsistent",
            FailureKind::SpecDivergence => "spec_divergence",
            FailureKind::CacheIncoherence => "cache_incoherence",
            FailureKind::OpFault => "op_fault",
            FailureKind::OpPanicked => "op_panicked",
            FailureKind::Deadlock => "deadlock",
            FailureKind::Diverged => "diverged",
            FailureKind::InvariantViolated => "invariant_violated",
        }
    }
}

/// A failing schedule: everything needed to reproduce it with [`replay`].
#[derive(Debug, Clone)]
pub struct Failure {
    /// What the oracle saw.
    pub kind: FailureKind,
    /// Human-readable diagnosis.
    pub detail: String,
    /// The ops that were racing.
    pub ops: Vec<Op>,
    /// The executed choice sequence (tid per decision) — the replayable
    /// schedule.
    pub schedule: Vec<usize>,
    /// The executed trace: `(tid, point)` per granted segment.
    pub trace: Vec<(usize, String)>,
    /// Preemptions the schedule needed (minimal for the first failure
    /// found, by exploration order).
    pub preemptions: usize,
    /// Crash-sampling seed in effect.
    pub seed: u64,
}

impl Failure {
    /// A copy-pasteable regression-test line reproducing this schedule.
    pub fn replay_snippet(&self) -> String {
        let ops: Vec<String> = self.ops.iter().map(|o| format!("Op::{o:?}")).collect();
        format!(
            "schedmc::replay(&[{}], &{:?}, &opts)",
            ops.join(", "),
            self.schedule
        )
    }
}

/// Aggregate result of an exploration.
#[derive(Debug, Clone, Default)]
pub struct ExploreReport {
    /// Schedules executed.
    pub schedules: usize,
    /// Times each point name appeared in an executed trace.
    pub points_hit: BTreeMap<String, u64>,
    /// Failing schedules (capped per op combination).
    pub failures: Vec<Failure>,
    /// Distinct `(inject point, crash-state fingerprint)` pairs reached:
    /// at each schedule point the crash oracle visits, every logical
    /// fingerprint of a reachable recovered state is paired with the point
    /// the granted thread was parked at. This is the coverage currency the
    /// fuzzer ([`fuzz`]) is measured in, collected here too so the
    /// exhaustive sweep provides a comparable baseline. Empty when the
    /// crash oracle is off.
    pub coverage_pairs: BTreeSet<(String, u64)>,
    /// Crash images checked by the crash oracle.
    pub crash_states_checked: u64,
    /// Largest crash-state space seen at any schedule point.
    pub state_space_max: u64,
    /// True when a budget or schedule cap cut enumeration short.
    pub truncated: bool,
}

impl ExploreReport {
    /// True when every executed schedule passed every oracle.
    pub fn is_clean(&self) -> bool {
        self.failures.is_empty()
    }

    /// Fold another report into this one.
    pub fn merge(&mut self, other: ExploreReport) {
        self.schedules += other.schedules;
        for (k, v) in other.points_hit {
            *self.points_hit.entry(k).or_insert(0) += v;
        }
        self.failures.extend(other.failures);
        self.coverage_pairs.extend(other.coverage_pairs);
        self.crash_states_checked += other.crash_states_checked;
        self.state_space_max = self.state_space_max.max(other.state_space_max);
        self.truncated |= other.truncated;
    }

    /// The `schedmc` coverage block exported through the obs JSON
    /// (`obs::Report::write_json_ext`).
    pub fn to_json(&self) -> serde_json::Value {
        let mut points = serde_json::Map::new();
        for (k, v) in &self.points_hit {
            points.insert(k.clone(), (*v).into());
        }
        let failures: Vec<serde_json::Value> = self
            .failures
            .iter()
            .map(|f| {
                serde_json::json!({
                    "kind": f.kind.name(),
                    "detail": f.detail.clone(),
                    "ops": f.ops.iter().map(|o| o.name()).collect::<Vec<_>>(),
                    "schedule": f.schedule.clone(),
                    "preemptions": f.preemptions,
                    "seed": f.seed,
                })
            })
            .collect();
        serde_json::json!({
            "schedules": self.schedules,
            "points_hit": serde_json::Value::Object(points),
            "failures": failures,
            "coverage_pairs": self.coverage_pairs.len(),
            "crash_states_checked": self.crash_states_checked,
            "state_space_max": self.state_space_max,
            "truncated": self.truncated,
        })
    }
}

/// Outcome of a single [`replay`]ed schedule.
#[derive(Debug, Clone)]
pub struct ReplayOutcome {
    /// The failure the schedule reproduces, if any.
    pub failure: Option<Failure>,
    /// The executed trace: `(tid, point)` per granted segment.
    pub trace: Vec<(usize, String)>,
    /// True when a requested choice was not schedulable and the default
    /// was taken instead (the run no longer reproduces the recording).
    pub diverged_from_schedule: bool,
}

// ---- final-state capture (sequential-specification oracle) -----------------

/// A name-keyed snapshot node: directory listing or file content. Inode
/// numbers are deliberately excluded — serial orders legitimately assign
/// different inos.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Node {
    Dir(Vec<String>),
    File(Vec<u8>),
}

type FsState = BTreeMap<String, Node>;

fn capture_state(fs: &LibFs) -> FsResult<FsState> {
    let mut out = BTreeMap::new();
    let mut stack = vec!["/".to_string()];
    while let Some(dir) = stack.pop() {
        let mut entries = fs.readdir(&dir)?;
        entries.sort_by(|a, b| a.name.cmp(&b.name));
        out.insert(
            dir.clone(),
            Node::Dir(entries.iter().map(|e| e.name.clone()).collect()),
        );
        for e in entries {
            let path = if dir == "/" {
                format!("/{}", e.name)
            } else {
                format!("{}/{}", dir, e.name)
            };
            match e.file_type {
                FileType::Directory => stack.push(path),
                FileType::Regular => {
                    out.insert(path.clone(), Node::File(fs.read_file(&path)?));
                }
            }
        }
    }
    Ok(out)
}

fn diff_states(got: &FsState, allowed: &[FsState]) -> String {
    let nearest = allowed
        .iter()
        .min_by_key(|s| {
            got.iter().filter(|(k, v)| s.get(*k) != Some(v)).count()
                + s.keys().filter(|k| !got.contains_key(*k)).count()
        })
        .expect("at least one serial order");
    let mut lines = Vec::new();
    for (k, v) in got {
        if nearest.get(k) != Some(v) {
            lines.push(format!("  concurrent has {k}: {v:?}"));
        }
    }
    for (k, v) in nearest {
        if !got.contains_key(k) {
            lines.push(format!("  nearest serial order has {k}: {v:?}"));
        }
    }
    lines.join("\n")
}

fn permutations(n: usize) -> Vec<Vec<usize>> {
    fn rec(remaining: &mut Vec<usize>, cur: &mut Vec<usize>, out: &mut Vec<Vec<usize>>) {
        if remaining.is_empty() {
            out.push(cur.clone());
            return;
        }
        for i in 0..remaining.len() {
            let x = remaining.remove(i);
            cur.push(x);
            rec(remaining, cur, out);
            cur.pop();
            remaining.insert(i, x);
        }
    }
    let mut out = Vec::new();
    rec(&mut (0..n).collect(), &mut Vec::new(), &mut out);
    out
}

/// Final states of every serial order of `ops` under `config` — the
/// reference set the concurrent final state must fall into.
fn serial_states(ops: &[Op], config: &Config) -> Result<Vec<FsState>, String> {
    let mut out: Vec<FsState> = Vec::new();
    for perm in permutations(ops.len()) {
        let (_kernel, fs) = arckfs::new_fs(DEVICE_LEN, config.clone())
            .map_err(|e| format!("serial mount: {e}"))?;
        setup(&fs).map_err(|e| format!("serial setup: {e}"))?;
        for &i in &perm {
            if let Err(e) = ops[i].run(&fs, i) {
                if fatal_op_error(&e) {
                    return Err(format!(
                        "op {} faulted in the serial order {perm:?}: {e}",
                        ops[i].name()
                    ));
                }
            }
        }
        let state = capture_state(&fs).map_err(|e| format!("serial capture: {e}"))?;
        if !out.contains(&state) {
            out.push(state);
        }
    }
    Ok(out)
}

pub(crate) fn fatal_op_error(e: &FsError) -> bool {
    e.is_fault()
        || matches!(
            e,
            FsError::Corrupted(_) | FsError::Internal(_) | FsError::Released { .. }
        )
}

/// `stat` (dcache path) must agree with `readdir` (authoritative walk)
/// about every name an op can create, remove, or rename.
fn coherence_probe(fs: &LibFs) -> Result<(), String> {
    let listed: Vec<String> = fs
        .readdir("/d")
        .map_err(|e| format!("coherence readdir: {e}"))?
        .into_iter()
        .map(|e| e.name)
        .collect();
    for name in ["n", "u0", "old", "new", "rv", "f0", "nb"] {
        let path = format!("/d/{name}");
        let via_stat = match fs.stat(&path) {
            Ok(_) => true,
            Err(FsError::NotFound) => false,
            Err(e) => return Err(format!("coherence stat {path}: {e}")),
        };
        let via_readdir = listed.iter().any(|n| n == name);
        if via_stat != via_readdir {
            return Err(format!(
                "'{name}': stat resolves it = {via_stat}, readdir lists it = {via_readdir}"
            ));
        }
    }
    Ok(())
}

// ---- one schedule ----------------------------------------------------------

#[derive(Debug, Clone)]
struct Prefix {
    choices: Vec<usize>,
    preemptions: usize,
}

struct RunOutcome {
    choices: Vec<usize>,
    alternatives: Vec<Prefix>,
    trace: Vec<(usize, String)>,
    failure: Option<(FailureKind, String)>,
    preemptions: usize,
    crash_states: u64,
    state_space_max: u64,
    prefix_diverged: bool,
    /// `(point, fingerprint)` coverage pairs this run reached (see
    /// [`ExploreReport::coverage_pairs`]).
    coverage: BTreeSet<(String, u64)>,
}

pub(crate) fn default_choice(last: Option<usize>, runnable: &[usize]) -> usize {
    match last {
        Some(l) if runnable.contains(&l) => l,
        _ => runnable[0],
    }
}

/// Deprioritizes cooperative lock-waiters ([`arckfs::inject::WAIT_PREFIX`]
/// points) whose retry already failed. A participant parked at a wait
/// point re-attempts its acquisition only when granted; granting it again
/// before any other thread has run is guaranteed to fail the same way (no
/// lock changed hands), so such threads are filtered out of the choice
/// set until a different grant lands. This both avoids livelock (a
/// keep-last-biased walk hammering a waiter forever) and keeps wait
/// retries from diluting schedule-choice entropy. The tracking is a pure
/// function of the grant history, so it is deterministic across runs.
#[derive(Default)]
pub(crate) struct WaitStall {
    stalled: std::collections::BTreeSet<usize>,
}

impl WaitStall {
    /// The choice set: runnable tids minus stalled waiters — unless that
    /// would leave nothing, in which case every runnable tid is offered
    /// (if they are all truly stuck the deadlock oracle reports it).
    pub(crate) fn filter(&self, runnable: &[(usize, String)]) -> Vec<usize> {
        let kept: Vec<usize> = runnable
            .iter()
            .filter(|(t, p)| {
                !(p.starts_with(arckfs::inject::WAIT_PREFIX) && self.stalled.contains(t))
            })
            .map(|(t, _)| *t)
            .collect();
        if kept.is_empty() {
            runnable.iter().map(|(t, _)| *t).collect()
        } else {
            kept
        }
    }

    /// Record a grant of `chosen` parked at `point`.
    pub(crate) fn note(&mut self, chosen: usize, point: &str) {
        if point.starts_with(arckfs::inject::WAIT_PREFIX) {
            self.stalled.insert(chosen);
        } else {
            // Any real progress may have released a lock; every waiter
            // deserves a fresh retry.
            self.stalled.clear();
        }
    }
}

fn run_one(
    ops: &[Op],
    prefix: &[usize],
    serial: &[FsState],
    opts: &ExploreOpts,
    collect_alternatives: bool,
) -> RunOutcome {
    let mut out = RunOutcome {
        choices: Vec::new(),
        alternatives: Vec::new(),
        trace: Vec::new(),
        failure: None,
        preemptions: 0,
        crash_states: 0,
        state_space_max: 0,
        prefix_diverged: false,
        coverage: BTreeSet::new(),
    };

    let device = if opts.crash_oracle {
        PmemDevice::new_tracked(DEVICE_LEN)
    } else {
        PmemDevice::new(DEVICE_LEN)
    };
    let (_kernel, fs) = match arckfs::new_fs_on(device.clone(), opts.config.clone()) {
        Ok(v) => v,
        Err(e) => {
            out.failure = Some((FailureKind::OpFault, format!("mount: {e}")));
            return out;
        }
    };
    if let Err(e) = setup(&fs) {
        out.failure = Some((FailureKind::OpFault, format!("setup: {e}")));
        return out;
    }
    if opts.crash_oracle {
        // Known-durable baseline: only the racing ops' own stores
        // contribute crash states from here on.
        device.persist_all();
    }

    let ctl = Controller::new();
    let mut handles = Vec::new();
    for (tid, op) in ops.iter().copied().enumerate() {
        let fs = fs.clone();
        handles.push(ctl.spawn(op.name(), move || op.run(&fs, tid)));
    }

    let mut last: Option<usize> = None;
    let mut stall = WaitStall::default();
    loop {
        let mut runnable = ctl.quiesce(opts.grace);
        if runnable.is_empty() {
            if ctl.all_finished() {
                break;
            }
            // Blocked participants may still be mid-handoff: give them one
            // long grace before calling it a deadlock.
            runnable = ctl.quiesce(opts.grace * 10);
            if runnable.is_empty() {
                if ctl.all_finished() {
                    break;
                }
                out.failure = Some((
                    FailureKind::Deadlock,
                    format!("no schedulable participant; statuses: {:?}", ctl.statuses()),
                ));
                break;
            }
        }

        let mut crash_fps: BTreeSet<u64> = BTreeSet::new();
        if opts.crash_oracle {
            match crashmc::check_bounded(
                &device,
                opts.crash_exhaustive_limit,
                opts.crash_samples,
                opts.seed ^ out.choices.len() as u64,
            ) {
                Ok(report) => {
                    out.crash_states += report.states as u64;
                    out.state_space_max = out.state_space_max.max(report.state_space);
                    crash_fps = report.fingerprints.clone();
                    if !report.is_consistent() {
                        out.failure = Some((
                            FailureKind::CrashInconsistent,
                            format!(
                                "{} of {} crash states fatal (space {}): {:?}",
                                report.fatal_states,
                                report.states,
                                report.state_space,
                                report.examples.first()
                            ),
                        ));
                        break;
                    }
                }
                Err(e) => {
                    out.failure =
                        Some((FailureKind::CrashInconsistent, format!("crash oracle: {e}")));
                    break;
                }
            }
        }

        if out.choices.len() >= opts.max_steps {
            out.failure = Some((
                FailureKind::Diverged,
                format!("schedule exceeded {} decisions", opts.max_steps),
            ));
            break;
        }

        // Pinned prefixes keep authority over the *full* runnable set (a
        // hand-written schedule may deliberately grant a stalled waiter);
        // free choices and branch alternatives use the stall-filtered set.
        let all_tids: Vec<usize> = runnable.iter().map(|(t, _)| *t).collect();
        let tids = stall.filter(&runnable);
        let chosen = if out.choices.len() < prefix.len() {
            let want = prefix[out.choices.len()];
            if all_tids.contains(&want) {
                want
            } else {
                out.prefix_diverged = true;
                default_choice(last, &tids)
            }
        } else {
            let d = default_choice(last, &tids);
            if collect_alternatives {
                for &t in &tids {
                    if t == d {
                        continue;
                    }
                    // Switching away from a still-runnable last thread
                    // costs a preemption; any switch after it parked,
                    // blocked, or finished is free.
                    let cost = out.preemptions
                        + usize::from(last.is_some_and(|l| tids.contains(&l) && t != l));
                    if cost <= opts.preemption_bound {
                        let mut choices = out.choices.clone();
                        choices.push(t);
                        out.alternatives.push(Prefix {
                            choices,
                            preemptions: cost,
                        });
                    }
                }
            }
            d
        };

        if last.is_some_and(|l| tids.contains(&l) && chosen != l) {
            out.preemptions += 1;
        }
        // Coverage: the crash fingerprints reachable here, keyed by the
        // point the schedule proceeds from — "what crash states exist when
        // execution resumes at this window".
        if let Some((_, point)) = runnable.iter().find(|(t, _)| *t == chosen) {
            for &fp in &crash_fps {
                out.coverage.insert((point.clone(), fp));
            }
            stall.note(chosen, point);
        }
        out.choices.push(chosen);
        let stepped = ctl.step(chosen);
        debug_assert!(stepped, "runnable tid must accept the grant");
        last = Some(chosen);
    }

    out.trace = ctl
        .trace()
        .into_iter()
        .map(|e| (e.tid, e.point))
        .collect();
    drop(ctl); // releases everyone (also on the early-failure paths)

    let mut op_results = Vec::new();
    for (tid, h) in handles.into_iter().enumerate() {
        op_results.push((tid, h.join()));
    }
    if out.failure.is_some() {
        return out;
    }

    for (tid, r) in &op_results {
        match r {
            Err(panic) => {
                out.failure = Some((
                    FailureKind::OpPanicked,
                    format!("op {} (tid {tid}) panicked: {panic}", ops[*tid].name()),
                ));
                return out;
            }
            Ok(Err(e)) if fatal_op_error(e) => {
                out.failure = Some((
                    FailureKind::OpFault,
                    format!("op {} (tid {tid}) failed: {e}", ops[*tid].name()),
                ));
                return out;
            }
            Ok(_) => {}
        }
    }

    match capture_state(&fs) {
        Ok(state) => {
            if !serial.contains(&state) {
                out.failure = Some((
                    FailureKind::SpecDivergence,
                    format!(
                        "final state matches none of {} serial orders:\n{}",
                        serial.len(),
                        diff_states(&state, serial)
                    ),
                ));
                return out;
            }
        }
        Err(e) => {
            out.failure = Some((FailureKind::OpFault, format!("post-run capture: {e}")));
            return out;
        }
    }

    if let Err(detail) = coherence_probe(&fs) {
        out.failure = Some((FailureKind::CacheIncoherence, detail));
        return out;
    }

    if let Err(e) = fs.unmount() {
        out.failure = Some((FailureKind::FsckFatal, format!("unmount: {e}")));
        return out;
    }
    match trio::fsck::fsck(&device) {
        Ok(report) => {
            let fatal = report.fatal();
            if !fatal.is_empty() {
                out.failure = Some((
                    FailureKind::FsckFatal,
                    format!("post-run fsck: {:?}", fatal[0]),
                ));
            }
        }
        Err(e) => {
            out.failure = Some((FailureKind::FsckFatal, format!("post-run fsck: {e}")));
        }
    }
    out
}

// ---- exploration driver ----------------------------------------------------

/// Exhaustively explore the interleavings of `ops` up to
/// [`ExploreOpts::preemption_bound`], running every oracle on each.
pub fn explore(ops: &[Op], opts: &ExploreOpts) -> ExploreReport {
    let deadline = opts.budget.map(|b| Instant::now() + b);
    explore_inner(ops, opts, deadline)
}

fn explore_inner(ops: &[Op], opts: &ExploreOpts, deadline: Option<Instant>) -> ExploreReport {
    let mut report = ExploreReport::default();
    let serial = match serial_states(ops, &opts.config) {
        Ok(s) => s,
        Err(e) => {
            report.failures.push(Failure {
                kind: FailureKind::OpFault,
                detail: format!("sequential specification unavailable: {e}"),
                ops: ops.to_vec(),
                schedule: Vec::new(),
                trace: Vec::new(),
                preemptions: 0,
                seed: opts.seed,
            });
            return report;
        }
    };

    let mut work = vec![Prefix {
        choices: Vec::new(),
        preemptions: 0,
    }];
    while !work.is_empty() {
        if report.schedules >= opts.max_schedules
            || report.failures.len() >= MAX_FAILURES_PER_SPACE
            || deadline.is_some_and(|d| Instant::now() >= d)
        {
            report.truncated = true;
            break;
        }
        // Cheapest-first: the first failure found needs the fewest
        // preemptions (FIFO among equals keeps shorter prefixes earlier).
        let next = work
            .iter()
            .enumerate()
            .min_by_key(|(i, p)| (p.preemptions, *i))
            .map(|(i, _)| i)
            .expect("non-empty worklist");
        let prefix = work.remove(next);

        let outcome = run_one(ops, &prefix.choices, &serial, opts, true);
        report.schedules += 1;
        for (_, point) in &outcome.trace {
            *report.points_hit.entry(point.clone()).or_insert(0) += 1;
        }
        report.crash_states_checked += outcome.crash_states;
        report.state_space_max = report.state_space_max.max(outcome.state_space_max);
        report.coverage_pairs.extend(outcome.coverage);
        if let Some((kind, detail)) = outcome.failure {
            report.failures.push(Failure {
                kind,
                detail,
                ops: ops.to_vec(),
                schedule: outcome.choices,
                trace: outcome.trace,
                preemptions: outcome.preemptions,
                seed: opts.seed,
            });
        }
        work.extend(outcome.alternatives);
    }
    report
}

/// Re-execute one recorded schedule (from [`Failure::schedule`]) and
/// report what the oracles see — the deterministic regression-test entry
/// point.
pub fn replay(ops: &[Op], schedule: &[usize], opts: &ExploreOpts) -> ReplayOutcome {
    let serial = match serial_states(ops, &opts.config) {
        Ok(s) => s,
        Err(e) => {
            return ReplayOutcome {
                failure: Some(Failure {
                    kind: FailureKind::OpFault,
                    detail: format!("sequential specification unavailable: {e}"),
                    ops: ops.to_vec(),
                    schedule: schedule.to_vec(),
                    trace: Vec::new(),
                    preemptions: 0,
                    seed: opts.seed,
                }),
                trace: Vec::new(),
                diverged_from_schedule: false,
            }
        }
    };
    let outcome = run_one(ops, schedule, &serial, opts, false);
    ReplayOutcome {
        failure: outcome.failure.map(|(kind, detail)| Failure {
            kind,
            detail,
            ops: ops.to_vec(),
            schedule: outcome.choices.clone(),
            trace: outcome.trace.clone(),
            preemptions: outcome.preemptions,
            seed: opts.seed,
        }),
        trace: outcome.trace,
        diverged_from_schedule: outcome.prefix_diverged,
    }
}

/// Explore every unordered pair (including self-pairs) from [`Op::ALL`] —
/// the quick CI sweep. The budget in `opts` bounds the whole sweep, not
/// each pair.
pub fn explore_vocabulary(opts: &ExploreOpts) -> ExploreReport {
    explore_combos(opts, 2)
}

/// Explore every unordered triple from [`Op::ALL`] — the deep sweep.
pub fn explore_vocabulary_triples(opts: &ExploreOpts) -> ExploreReport {
    explore_combos(opts, 3)
}

/// Explore every unordered pair involving a batch-close driver
/// ([`Op::BATCH`]) under a **batch-enabled** copy of `opts.config` —
/// the vocabulary sweep alone never schedules a real close because the
/// default config leaves group durability off. Same preemption bound
/// and budget semantics as [`explore_vocabulary`].
pub fn explore_batch_pairs(opts: &ExploreOpts) -> ExploreReport {
    let mut opts = opts.clone();
    opts.config.batch = true;
    let deadline = opts.budget.map(|b| Instant::now() + b);
    let mut report = ExploreReport::default();
    let first_batch = Op::ALL.len() - Op::BATCH.len();
    for i in 0..Op::ALL.len() {
        for j in i..Op::ALL.len() {
            if i < first_batch && j < first_batch {
                continue;
            }
            if deadline.is_some_and(|d| Instant::now() >= d) {
                report.truncated = true;
                return report;
            }
            report.merge(explore_inner(&[Op::ALL[i], Op::ALL[j]], &opts, deadline));
        }
    }
    report
}

/// Explore every unordered pair involving [`Op::WriteDelegated`] under a
/// **ring-enabled** copy of `opts.config` (two delegation rings, the
/// delegation floor dropped so the op's multi-page payload actually rides
/// them) — the vocabulary sweep alone only exercises the inline store
/// path, so the `delegate.sq.*` schedule points would never arbitrate.
/// Same preemption bound and budget semantics as [`explore_vocabulary`].
pub fn explore_delegate_pairs(opts: &ExploreOpts) -> ExploreReport {
    let mut opts = opts.clone();
    opts.config.delegation_threads = 2;
    opts.config.delegation_min = 4096;
    opts.config.deleg_batch = 2;
    let deadline = opts.budget.map(|b| Instant::now() + b);
    let mut report = ExploreReport::default();
    let deleg = Op::ALL
        .iter()
        .position(|o| *o == Op::WriteDelegated)
        .expect("WriteDelegated in the vocabulary");
    for i in 0..Op::ALL.len() {
        for j in i..Op::ALL.len() {
            if i != deleg && j != deleg {
                continue;
            }
            if deadline.is_some_and(|d| Instant::now() >= d) {
                report.truncated = true;
                return report;
            }
            report.merge(explore_inner(&[Op::ALL[i], Op::ALL[j]], &opts, deadline));
        }
    }
    report
}

/// Explore every unordered pair involving a ranged-data op
/// ([`Op::RANGED`]: the disjoint vectored writer and the preallocator)
/// twice: once with the extent mapping and range locks forced **on** (the
/// `file.write.{range_lock,extent_insert,cow_tail}` points arbitrate) and
/// once forced **off**, so the same pair space is re-checked on the legacy
/// whole-file-lock path. Same preemption bound and budget semantics as
/// [`explore_vocabulary`].
pub fn explore_range_pairs(opts: &ExploreOpts) -> ExploreReport {
    let deadline = opts.budget.map(|b| Instant::now() + b);
    let mut report = ExploreReport::default();
    for ranged_on in [true, false] {
        let mut opts = opts.clone();
        opts.config.range_locks = ranged_on;
        opts.config.extent = ranged_on;
        for i in 0..Op::ALL.len() {
            for j in i..Op::ALL.len() {
                if !Op::RANGED.contains(&Op::ALL[i]) && !Op::RANGED.contains(&Op::ALL[j]) {
                    continue;
                }
                if deadline.is_some_and(|d| Instant::now() >= d) {
                    report.truncated = true;
                    return report;
                }
                report.merge(explore_inner(&[Op::ALL[i], Op::ALL[j]], &opts, deadline));
            }
        }
    }
    report
}

fn explore_combos(opts: &ExploreOpts, arity: usize) -> ExploreReport {
    let deadline = opts.budget.map(|b| Instant::now() + b);
    let mut report = ExploreReport::default();
    let mut combos: Vec<Vec<Op>> = Vec::new();
    match arity {
        2 => {
            for i in 0..Op::ALL.len() {
                for j in i..Op::ALL.len() {
                    combos.push(vec![Op::ALL[i], Op::ALL[j]]);
                }
            }
        }
        3 => {
            for i in 0..Op::ALL.len() {
                for j in i..Op::ALL.len() {
                    for k in j..Op::ALL.len() {
                        combos.push(vec![Op::ALL[i], Op::ALL[j], Op::ALL[k]]);
                    }
                }
            }
        }
        other => panic!("unsupported combination arity {other}"),
    }
    for ops in combos {
        if deadline.is_some_and(|d| Instant::now() >= d) {
            report.truncated = true;
            break;
        }
        report.merge(explore_inner(&ops, opts, deadline));
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_opts() -> ExploreOpts {
        ExploreOpts {
            preemption_bound: 2,
            max_schedules: 64,
            max_steps: 64,
            grace: Duration::from_millis(10),
            crash_oracle: false,
            crash_exhaustive_limit: 16,
            crash_samples: 4,
            seed: 7,
            budget: None,
            config: Config::arckfs_plus(),
        }
    }

    #[test]
    fn permutations_count() {
        assert_eq!(permutations(1).len(), 1);
        assert_eq!(permutations(2).len(), 2);
        assert_eq!(permutations(3).len(), 6);
    }

    #[test]
    fn serial_spec_covers_both_orders() {
        // create + unlink touch different names: both orders agree, so the
        // serial-state set deduplicates to one state.
        let s = serial_states(&[Op::Create, Op::Unlink], &Config::arckfs_plus()).unwrap();
        assert_eq!(s.len(), 1);
        // two appends differ by order... but produce the same byte count,
        // different content order — two distinct states.
        let s = serial_states(&[Op::Append, Op::Append], &Config::arckfs_plus()).unwrap();
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn single_op_explores_clean() {
        let report = explore(&[Op::Create], &test_opts());
        assert!(report.schedules >= 1);
        assert!(report.is_clean(), "{:?}", report.failures);
        assert!(!report.truncated);
    }

    #[test]
    fn pair_exploration_finds_multiple_schedules() {
        let report = explore(&[Op::Create, Op::Rename], &test_opts());
        assert!(
            report.schedules > 1,
            "two racing ops must admit more than one interleaving, got {}",
            report.schedules
        );
        assert!(report.is_clean(), "{:?}", report.failures);
    }

    #[test]
    fn replay_is_deterministic() {
        let opts = test_opts();
        let a = replay(&[Op::Create, Op::Rename], &[0, 0, 1, 1], &opts);
        let b = replay(&[Op::Create, Op::Rename], &[0, 0, 1, 1], &opts);
        assert_eq!(a.trace, b.trace);
        assert!(a.failure.is_none(), "{:?}", a.failure);
    }

    #[test]
    fn report_merge_accumulates() {
        let mut a = ExploreReport {
            schedules: 2,
            ..Default::default()
        };
        a.points_hit.insert("x".into(), 1);
        let mut b = ExploreReport {
            schedules: 3,
            truncated: true,
            ..Default::default()
        };
        b.points_hit.insert("x".into(), 2);
        b.points_hit.insert("y".into(), 1);
        a.merge(b);
        assert_eq!(a.schedules, 5);
        assert_eq!(a.points_hit["x"], 3);
        assert_eq!(a.points_hit["y"], 1);
        assert!(a.truncated);
        let json = a.to_json();
        assert_eq!(json.get("schedules").and_then(|v| v.as_u64()), Some(5));
        assert_eq!(
            json.get("points_hit")
                .and_then(|p| p.get("x"))
                .and_then(|v| v.as_u64()),
            Some(3)
        );
    }
}
