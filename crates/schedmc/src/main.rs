//! `schedmc` CLI: run the vocabulary sweep and export coverage.
//!
//! Default is the quick CI mode (all op pairs, preemption bound 2,
//! seeded, time-budgeted). `ARCKFS_SCHEDMC_DEEP=1` switches to the deep
//! sweep (all op triples, bound 3). Exits non-zero when any schedule
//! fails an oracle; coverage lands in `results/obs_schedmc.json`.

use schedmc::ExploreOpts;

fn main() {
    let deep = std::env::var("ARCKFS_SCHEDMC_DEEP").is_ok_and(|v| v == "1");
    obs::enable();

    let (mode, opts) = if deep {
        ("deep (triples)", ExploreOpts::deep())
    } else {
        ("quick (pairs)", ExploreOpts::quick())
    };
    eprintln!(
        "schedmc: {mode} sweep, preemption bound {}, seed {:#x}",
        opts.preemption_bound, opts.seed
    );

    let mut report = if deep {
        schedmc::explore_vocabulary_triples(&opts)
    } else {
        schedmc::explore_vocabulary(&opts)
    };
    // Every pair involving a batch close, re-swept with group durability
    // enabled (the default config leaves it off, so the sweep above
    // never schedules a real close).
    report.merge(schedmc::explore_batch_pairs(&opts));
    // Every pair involving a delegated write, re-swept with the
    // delegation rings enabled (the default config writes inline, so the
    // sweep above never arbitrates the `delegate.sq.*` points).
    report.merge(schedmc::explore_delegate_pairs(&opts));
    // Every pair involving a ranged-data op (disjoint vectored writer,
    // preallocator), swept with the extent/range-lock path forced on and
    // then again forced off, so the `file.write.*` windows arbitrate and
    // the legacy whole-file-lock path is re-checked on the same pairs.
    report.merge(schedmc::explore_range_pairs(&opts));

    eprintln!(
        "schedmc: {} schedules, {} distinct points hit, {} crash states checked (max space {}){}",
        report.schedules,
        report.points_hit.len(),
        report.crash_states_checked,
        report.state_space_max,
        if report.truncated {
            ", truncated by budget"
        } else {
            ""
        }
    );

    if let Err(e) = obs::report().write_json_ext(
        "schedmc",
        &[("schedmc", report.to_json())],
    ) {
        eprintln!("schedmc: failed to write obs json: {e}");
    }

    if report.is_clean() {
        eprintln!("schedmc: all schedules passed all oracles");
        return;
    }
    eprintln!("schedmc: {} failing schedule(s):", report.failures.len());
    for f in &report.failures {
        let ops: Vec<&str> = f.ops.iter().map(|o| o.name()).collect();
        eprintln!(
            "  [{}] ops=({}) schedule={:?} preemptions={} seed={:#x}\n    {}\n    replay: {}",
            f.kind.name(),
            ops.join(", "),
            f.schedule,
            f.preemptions,
            f.seed,
            f.detail.replace('\n', "\n    "),
            f.replay_snippet()
        );
    }
    std::process::exit(1);
}
