//! `schedmc` CLI: run the vocabulary sweep and export coverage.
//!
//! Default is the quick CI mode (all op pairs, preemption bound 2,
//! seeded, time-budgeted). `ARCKFS_SCHEDMC_DEEP=1` switches to the deep
//! sweep (all op triples, bound 3). Exits non-zero when any schedule
//! fails an oracle; coverage lands in `results/obs_schedmc.json`.
//!
//! `schedmc fuzz` runs the coverage-guided fuzzing campaign instead
//! ([`schedmc::fuzz`]): the deterministic exec-bounded smoke by default
//! (`ARCKFS_FUZZ_EXECS`, `ARCKFS_FUZZ_SEED`), the wall-clock-budgeted
//! nightly depth at `ARCKFS_SCHEDMC_DEEP=2` (`ARCKFS_FUZZ_BUDGET_MS`).
//! After the campaign it re-runs the exhaustive bound-2 pair sweep on the
//! same time budget as a coverage baseline, writes both blocks to
//! `results/obs_fuzz.json`, and exits non-zero unless the campaign found
//! new coverage, beat the baseline's pair count, and hit zero failures.

use schedmc::fuzz::{FuzzOpts, InvariantStatus};
use schedmc::ExploreOpts;

fn main() {
    if std::env::args().nth(1).as_deref() == Some("fuzz") {
        fuzz_main();
        return;
    }
    let deep = std::env::var("ARCKFS_SCHEDMC_DEEP").is_ok_and(|v| v == "1");
    obs::enable();

    let (mode, opts) = if deep {
        ("deep (triples)", ExploreOpts::deep())
    } else {
        ("quick (pairs)", ExploreOpts::quick())
    };
    eprintln!(
        "schedmc: {mode} sweep, preemption bound {}, seed {:#x}",
        opts.preemption_bound, opts.seed
    );

    let mut report = if deep {
        schedmc::explore_vocabulary_triples(&opts)
    } else {
        schedmc::explore_vocabulary(&opts)
    };
    // Every pair involving a batch close, re-swept with group durability
    // enabled (the default config leaves it off, so the sweep above
    // never schedules a real close).
    report.merge(schedmc::explore_batch_pairs(&opts));
    // Every pair involving a delegated write, re-swept with the
    // delegation rings enabled (the default config writes inline, so the
    // sweep above never arbitrates the `delegate.sq.*` points).
    report.merge(schedmc::explore_delegate_pairs(&opts));
    // Every pair involving a ranged-data op (disjoint vectored writer,
    // preallocator), swept with the extent/range-lock path forced on and
    // then again forced off, so the `file.write.*` windows arbitrate and
    // the legacy whole-file-lock path is re-checked on the same pairs.
    report.merge(schedmc::explore_range_pairs(&opts));

    eprintln!(
        "schedmc: {} schedules, {} distinct points hit, {} crash states checked (max space {}){}",
        report.schedules,
        report.points_hit.len(),
        report.crash_states_checked,
        report.state_space_max,
        if report.truncated {
            ", truncated by budget"
        } else {
            ""
        }
    );

    if let Err(e) = obs::report().write_json_ext(
        "schedmc",
        &[("schedmc", report.to_json())],
    ) {
        eprintln!("schedmc: failed to write obs json: {e}");
    }

    if report.is_clean() {
        eprintln!("schedmc: all schedules passed all oracles");
        return;
    }
    eprintln!("schedmc: {} failing schedule(s):", report.failures.len());
    for f in &report.failures {
        let ops: Vec<&str> = f.ops.iter().map(|o| o.name()).collect();
        eprintln!(
            "  [{}] ops=({}) schedule={:?} preemptions={} seed={:#x}\n    {}\n    replay: {}",
            f.kind.name(),
            ops.join(", "),
            f.schedule,
            f.preemptions,
            f.seed,
            f.detail.replace('\n', "\n    "),
            f.replay_snippet()
        );
    }
    std::process::exit(1);
}

fn fuzz_main() {
    obs::enable();
    let deep = std::env::var("ARCKFS_SCHEDMC_DEEP").is_ok_and(|v| v == "2");
    let (mode, opts) = if deep {
        ("nightly (budgeted)", FuzzOpts::nightly())
    } else {
        ("smoke (exec-bounded)", FuzzOpts::smoke())
    };
    eprintln!(
        "schedmc: fuzz {mode}, seed {:#x}, {} tenants x {} threads, vocabulary {}",
        opts.seed,
        opts.tenants,
        opts.threads,
        opts.vocabulary.len()
    );

    let report = schedmc::fuzz::fuzz(&opts);
    eprintln!(
        "schedmc: fuzz {} execs in {:?} ({} corpus, {} pairs, {} buckets, {} new-coverage events, {} crash states, {} quota rejections)",
        report.execs,
        report.elapsed,
        report.corpus,
        report.coverage_pairs.len(),
        report.point_buckets.len(),
        report.new_coverage_events,
        report.crash_states_checked,
        report.quota_rejections,
    );
    for (name, st) in &report.invariants {
        eprintln!(
            "schedmc:   invariant {name}: {} ({} clean runs, {} violations)",
            st.status.name(),
            st.clean_runs,
            st.violations
        );
    }

    // Baseline: the exhaustive bound-2 pair sweep, crash oracle on, capped
    // to the wall clock the fuzz campaign just spent — the apples-to-apples
    // comparison the acceptance criteria pin (both sides report distinct
    // `(inject point, crash fingerprint)` pairs).
    let mut base_opts = ExploreOpts::quick();
    base_opts.budget = Some(report.elapsed);
    let baseline = schedmc::explore_vocabulary(&base_opts);
    eprintln!(
        "schedmc: baseline bound-2 pair sweep on the same budget: {} schedules, {} pairs{}",
        baseline.schedules,
        baseline.coverage_pairs.len(),
        if baseline.truncated {
            " (truncated by budget)"
        } else {
            ""
        }
    );

    if let Err(e) = obs::report().write_json_ext(
        "fuzz",
        &[
            ("fuzz", report.to_json()),
            (
                "baseline",
                serde_json::json!({
                    "coverage_pairs": baseline.coverage_pairs.len(),
                    "schedules": baseline.schedules,
                    "crash_states_checked": baseline.crash_states_checked,
                    "budget_ms": report.elapsed.as_millis() as u64,
                    "truncated": baseline.truncated,
                }),
            ),
        ],
    ) {
        eprintln!("schedmc: failed to write obs json: {e}");
    }

    let mut bad = false;
    if !report.is_clean() {
        bad = true;
        eprintln!("schedmc: fuzz found {} failure(s):", report.failures.len());
        for f in report.failures.iter().take(2) {
            eprintln!(
                "  [{}] seed={:#x} {}",
                f.kind.name(),
                f.seed,
                f.detail.replace('\n', "\n    ")
            );
            let (min_prog, min_sched) =
                schedmc::fuzz::minimize(&f.program, f.seed, f.kind, &opts);
            eprintln!(
                "  minimized to {} ops (from {}), pinned schedule {:?}",
                min_prog.len(),
                f.program.len(),
                min_sched
            );
            let pinned = schedmc::fuzz::FuzzFailure {
                kind: f.kind,
                detail: f.detail.clone(),
                program: min_prog,
                schedule: min_sched,
                seed: f.seed,
            };
            eprintln!("  replay: {}", pinned.replay_snippet());
        }
    }
    if report.new_coverage_events == 0 {
        bad = true;
        eprintln!("schedmc: FAIL — fuzz campaign produced zero new-coverage events");
    }
    if report.coverage_pairs.len() <= baseline.coverage_pairs.len() {
        bad = true;
        eprintln!(
            "schedmc: FAIL — fuzz coverage ({} pairs) did not beat the bound-2 sweep ({} pairs) on the same budget",
            report.coverage_pairs.len(),
            baseline.coverage_pairs.len()
        );
    }
    if report.invariants_with(InvariantStatus::Promoted).is_empty() {
        // Not fatal: a very short custom campaign may not reach the
        // promotion threshold. The CI smoke uses defaults that do.
        eprintln!("schedmc: note — no invariant reached promotion");
    }
    if bad {
        std::process::exit(1);
    }
    eprintln!("schedmc: fuzz campaign clean, coverage beat the exhaustive baseline");
}
