//! Coverage-guided crash/schedule fuzzing.
//!
//! The exhaustive explorer ([`crate::explore`]) is complete up to its
//! preemption bound but only over tiny op programs (pairs, triples) on a
//! single-tenant namespace. This module is the complementary search: long
//! randomized op programs (10–50 ops over the full vocabulary, including
//! multi-tenant ops against distinct LibFS uids) whose schedules are
//! driven by a **seeded weighted random walk** over the same
//! [`Controller`] choice points, with
//! occasional preemption bursts.
//!
//! The coverage signal a program is judged by combines two ingredients:
//!
//! * **`(inject point, crash fingerprint)` pairs** — at a periodic crash
//!   check (every [`FuzzOpts::crash_period`] decisions) every logical
//!   fingerprint of a reachable recovered state
//!   ([`crashmc::CrashReport::fingerprints`]) is paired with the point the
//!   schedule resumes from. This is the same currency
//!   [`crate::ExploreReport::coverage_pairs`] collects, so the exhaustive
//!   sweep provides a directly comparable baseline.
//! * **per-point hit buckets** — AFL-style `log2` buckets of how often a
//!   run visited each inject point, catching "same pairs, much deeper
//!   loop" programs the pair set alone would discard.
//!
//! Programs that reach new coverage enter an energy-weighted corpus and
//! are mutated (splice / insert / delete / arg-perturb / tenant-reassign)
//! to produce the next inputs.
//!
//! # Invariant mining
//!
//! Alongside the hard oracles (crash consistency, fsck, faults, cache
//! coherence, deadlock) the fuzzer records candidate predicates at its
//! observation points and *mines* them: a candidate that holds for
//! [`FuzzOpts::promote_after`] consecutive evaluated runs is **promoted**
//! to a first-class oracle (violations then fail the campaign); a
//! candidate refuted while still on probation is **demoted** — it keeps a
//! record of the counterexample but never fails a run. The candidate set:
//!
//! | name | predicate | checked |
//! |------|-----------|---------|
//! | `size_monotone` | durable file sizes never shrink within a run | per crash check |
//! | `commit_before_link` | no dangling dentry in the durable image (a visible link implies a committed target) | per crash check |
//! | `charge_le_quota.pages` | every tenant's volatile page charge ≤ its quota | per decision |
//! | `charge_le_quota.inodes` | every tenant's volatile inode charge ≤ its quota | per decision |
//! | `durable_within_charge` | durable per-tenant page usage ≤ volatile charge | per crash check |
//!
//! `size_monotone` is refuted by any `truncate` that shrinks across a
//! durable boundary and `durable_within_charge` by an `unlink` whose
//! volatile uncharge races the durable image — both demote themselves in a
//! full-vocabulary campaign, which is exactly the lifecycle working as
//! designed. The quota-charge invariants hold by construction of the
//! provider layer and promote; a later violation would be a real bug.
//!
//! Every failure carries the program, the executed schedule, and the run
//! seed: [`replay_fuzz`] re-executes it pinned, [`minimize`] shrinks the
//! program while the failure still reproduces.

use std::collections::{BTreeMap, BTreeSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use arckfs::inject::Controller;
use arckfs::{Config, LibFs};
use pmem::PmemDevice;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use trio::{Kernel, KernelConfig};
use vfs::{Fd, FileSystem, FsError, FsResult, OpenFlags};

use crate::{env_u64, fatal_op_error, FailureKind, Op, DEVICE_LEN};

/// First tenant uid; tenant `k` mounts as `TENANT_UID_BASE + k` (the same
/// convention the `service` crate uses).
pub const TENANT_UID_BASE: u32 = 100;

/// Corpus size cap: beyond this the lowest-energy entry is evicted.
const CORPUS_CAP: usize = 256;

/// Failures collected before a campaign stops early.
const MAX_FUZZ_FAILURES: usize = 8;

// ---- invariant names -------------------------------------------------------

/// Mined invariant: durable file sizes never shrink within a run.
pub const INV_SIZE_MONOTONE: &str = "size_monotone";
/// Mined invariant: a visible link implies a committed target inode.
pub const INV_COMMIT_BEFORE_LINK: &str = "commit_before_link";
/// Mined invariant: volatile page charge ≤ page quota, per tenant.
pub const INV_PAGE_CHARGE: &str = "charge_le_quota.pages";
/// Mined invariant: volatile inode charge ≤ inode quota, per tenant.
pub const INV_INO_CHARGE: &str = "charge_le_quota.inodes";
/// Mined invariant: durable page usage ≤ volatile charge, per tenant.
pub const INV_DURABLE_WITHIN_CHARGE: &str = "durable_within_charge";

// ---- op vocabulary ---------------------------------------------------------

/// One fuzzed operation kind. This is deliberately a separate enum from
/// [`Op`]: the explorer's vocabulary is pinned (its pair counts are part
/// of regression baselines), while the fuzzer adds shrinking ops
/// (`truncate`) and namespace growth (`mkdir`) that would break the
/// explorer's serial-order oracle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum FuzzOpKind {
    /// `create_new` of an `arg`-picked name — racing creates arbitrate.
    Create,
    /// `unlink_at` of an `arg`-picked name.
    Unlink,
    /// `rename` between `old` and `new` inside the tenant home
    /// (direction by `arg`); the only absolute-path op, so it also
    /// exercises root revival and cross-tenant root ownership hand-off.
    Rename,
    /// `release_path` of the tenant home — the §4.3 voluntary release.
    Release,
    /// create of `rv` through the home handle — forces §4.3 revival when
    /// racing a [`FuzzOpKind::Release`] of the same home.
    Revive,
    /// `open_at` + close of a fixture — drives the dcache fill.
    OpenAt,
    /// `O_APPEND` write into the shared `f0`.
    Append,
    /// Multi-page write sized to ride the delegation rings.
    WriteDelegated,
    /// Disjoint vectored write into the shared `f0` at a thread-distinct
    /// block-aligned offset (range-lock / extent windows).
    WriteRanged,
    /// `fallocate` on `f0`; no-op when unsupported.
    Fallocate,
    /// Explicit group-durability close.
    FlushBatch,
    /// Create meant to ride an open commit batch.
    CreateBatched,
    /// Truncate `f0` to an `arg`-picked size — the designated refuter of
    /// the `size_monotone` candidate invariant.
    Truncate,
    /// `mkdir_at` of an `arg`-picked subdirectory.
    Mkdir,
}

impl FuzzOpKind {
    /// The whole fuzz vocabulary in a fixed order.
    pub const ALL: [FuzzOpKind; 14] = [
        FuzzOpKind::Create,
        FuzzOpKind::Unlink,
        FuzzOpKind::Rename,
        FuzzOpKind::Release,
        FuzzOpKind::Revive,
        FuzzOpKind::OpenAt,
        FuzzOpKind::Append,
        FuzzOpKind::WriteDelegated,
        FuzzOpKind::WriteRanged,
        FuzzOpKind::Fallocate,
        FuzzOpKind::FlushBatch,
        FuzzOpKind::CreateBatched,
        FuzzOpKind::Truncate,
        FuzzOpKind::Mkdir,
    ];

    /// Short name (labels, reports).
    pub fn name(self) -> &'static str {
        match self {
            FuzzOpKind::Create => "create",
            FuzzOpKind::Unlink => "unlink",
            FuzzOpKind::Rename => "rename",
            FuzzOpKind::Release => "release",
            FuzzOpKind::Revive => "revive",
            FuzzOpKind::OpenAt => "open_at",
            FuzzOpKind::Append => "append",
            FuzzOpKind::WriteDelegated => "write_delegated",
            FuzzOpKind::WriteRanged => "write_ranged",
            FuzzOpKind::Fallocate => "fallocate",
            FuzzOpKind::FlushBatch => "flush_batch",
            FuzzOpKind::CreateBatched => "create_batched",
            FuzzOpKind::Truncate => "truncate",
            FuzzOpKind::Mkdir => "mkdir",
        }
    }
}

/// One op of a fuzz program: what to do, against which tenant's LibFS,
/// with which perturbable argument (name pick, size, direction).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FuzzOp {
    /// The operation.
    pub kind: FuzzOpKind,
    /// Tenant index (modulo the mounted tenant count).
    pub tenant: u8,
    /// Op-specific argument the mutator perturbs.
    pub arg: u16,
}

/// Names any fuzz op can create under a tenant home, plus the fixtures —
/// the universe the coherence probe checks both directions.
const NAME_POOL: [&str; 16] = [
    "f0", "old", "u0", "new", "rv", "n0", "n1", "n2", "n3", "w0", "w1", "w2", "w3", "nb0", "nb1",
    "sub0",
];

/// A mounted tenant: its LibFS, home path, and the pinned home handle
/// every `*_at` op anchors on (the service-crate idiom — path walks from
/// the root would serialize every tenant on root ownership).
struct TenantCtx {
    fs: Arc<LibFs>,
    home: String,
    home_fd: Fd,
    uid: u32,
}

impl FuzzOp {
    /// True when `e` is an expected consequence of racing this vocabulary
    /// (lost races, exhausted resources, lease contention, foreign-owned
    /// root) rather than a bug.
    fn benign(e: &FsError) -> bool {
        matches!(
            e,
            FsError::NotFound
                | FsError::AlreadyExists
                | FsError::IsADirectory
                | FsError::NotADirectory
                | FsError::NotEmpty
                | FsError::Busy
                | FsError::NotOwner { .. }
                | FsError::NoSpace
                | FsError::FileTooBig { .. }
                | FsError::Unsupported(_)
        )
    }

    fn run(self, t: &TenantCtx, tid: usize) -> FsResult<()> {
        let fs = &*t.fs;
        match self.kind {
            FuzzOpKind::Create => {
                let name = format!("n{}", self.arg % 4);
                let fd = fs.open_at(t.home_fd, &name, OpenFlags::rw().create_new())?;
                fs.close(fd)
            }
            FuzzOpKind::Unlink => {
                let name = NAME_POOL[self.arg as usize % NAME_POOL.len()];
                fs.unlink_at(t.home_fd, name)
            }
            FuzzOpKind::Rename => {
                let (from, to) = if self.arg.is_multiple_of(2) {
                    ("old", "new")
                } else {
                    ("new", "old")
                };
                let r = fs.rename(
                    &format!("{}/{from}", t.home),
                    &format!("{}/{to}", t.home),
                );
                // Hand the root inode back: the walk above revived (and
                // now owns) it, and every other tenant's absolute-path op
                // would otherwise see `NotOwner` for the rest of the run.
                let _ = fs.release_path("/");
                r
            }
            FuzzOpKind::Release => {
                let r = fs.release_path(&t.home);
                // Resolving the home path revived (and took ownership of)
                // the root inode; hand it back like the rename op does.
                let _ = fs.release_path("/");
                r
            }
            FuzzOpKind::Revive => {
                let fd = fs.open_at(t.home_fd, "rv", OpenFlags::rw().create())?;
                fs.close(fd)
            }
            FuzzOpKind::OpenAt => {
                let name = NAME_POOL[self.arg as usize % 4];
                let fd = fs.open_at(t.home_fd, name, OpenFlags::read())?;
                fs.close(fd)
            }
            FuzzOpKind::Append => {
                let fd = fs.open_at(t.home_fd, "f0", OpenFlags::empty().append())?;
                let r = fs.append(fd, &Op::append_payload(tid)).map(|_| ());
                let c = fs.close(fd);
                r.and(c)
            }
            FuzzOpKind::WriteDelegated => {
                let name = format!("w{}", self.arg % 4);
                let fd = fs.open_at(t.home_fd, &name, OpenFlags::rw().create())?;
                let r = fs
                    .write_at(fd, &Op::delegated_payload(tid), 0)
                    .map(|_| ());
                let c = fs.close(fd);
                r.and(c)
            }
            FuzzOpKind::WriteRanged => {
                let fd = fs.open_at(t.home_fd, "f0", OpenFlags::empty().write())?;
                let payload = Op::ranged_payload(tid);
                let (head, tail) = payload.split_at(payload.len() / 2);
                let r = fs
                    .write_vectored_at(fd, &[head, tail], Op::ranged_offset(tid))
                    .map(|_| ());
                let c = fs.close(fd);
                r.and(c)
            }
            FuzzOpKind::Fallocate => {
                let fd = fs.open_at(t.home_fd, "f0", OpenFlags::empty().write())?;
                let r = match fs.fallocate(fd, 1024, 2048) {
                    Err(FsError::Unsupported(_)) => Ok(()),
                    r => r,
                };
                let c = fs.close(fd);
                r.and(c)
            }
            FuzzOpKind::FlushBatch => {
                fs.flush_batch();
                Ok(())
            }
            FuzzOpKind::CreateBatched => {
                let name = format!("nb{}", self.arg % 2);
                let fd = fs.open_at(t.home_fd, &name, OpenFlags::rw().create())?;
                fs.close(fd)
            }
            FuzzOpKind::Truncate => {
                let fd = fs.open_at(t.home_fd, "f0", OpenFlags::empty().write())?;
                let r = fs.truncate(fd, u64::from(self.arg) % 4096);
                let c = fs.close(fd);
                r.and(c)
            }
            FuzzOpKind::Mkdir => fs.mkdir_at(t.home_fd, "sub0"),
        }
    }
}

// ---- options ---------------------------------------------------------------

/// Fuzzing-campaign parameters. [`FuzzOpts::smoke`] is the deterministic
/// CI leg (exec-bounded, no wall clock in the loop); [`FuzzOpts::nightly`]
/// is the budgeted deep leg.
#[derive(Debug, Clone)]
pub struct FuzzOpts {
    /// Master seed: corpus generation, mutation, and schedule walks all
    /// derive from it. Same seed + same exec bound ⇒ byte-identical
    /// coverage (the determinism regression pins this).
    pub seed: u64,
    /// Stop after this many program executions (`None` = unbounded).
    pub max_execs: Option<u64>,
    /// Stop after this much wall clock (`None` = unbounded). At least one
    /// of `max_execs` / `budget` should be set.
    pub budget: Option<Duration>,
    /// Minimum generated program length.
    pub program_min: usize,
    /// Maximum generated program length.
    pub program_max: usize,
    /// Participant threads a program is striped across (op `i` runs on
    /// thread `i % threads`).
    pub threads: usize,
    /// Mounted tenants (distinct LibFS uids).
    pub tenants: usize,
    /// Per-tenant page quota installed at format time.
    pub page_quota: Option<u64>,
    /// Per-tenant inode quota installed at format time.
    pub ino_quota: Option<u64>,
    /// Run the crash oracle (and the durable-image invariants) every this
    /// many schedule decisions; `0` disables crash checking entirely.
    pub crash_period: usize,
    /// Crash spaces at most this large are enumerated exhaustively.
    pub crash_exhaustive_limit: u64,
    /// Samples drawn from larger crash spaces.
    pub crash_samples: usize,
    /// Quiesce grace before a busy participant is classified blocked.
    pub grace: Duration,
    /// Cap on decisions per run (runaway guard; fuzz programs are long).
    pub max_steps: usize,
    /// Candidate invariants promote after this many consecutive clean
    /// evaluated runs.
    pub promote_after: u64,
    /// Randomly generated programs seeding the corpus.
    pub corpus_seeds: usize,
    /// Vocabulary the generator and mutator draw from.
    pub vocabulary: Vec<FuzzOpKind>,
    /// LibFS configuration under test. The fuzzer enables the optional
    /// subsystems (delegation, extent/range locks, batching) in its
    /// defaults so their inject points are reachable.
    pub config: Config,
}

impl FuzzOpts {
    /// The deterministic CI smoke: exec-bounded (`ARCKFS_FUZZ_EXECS`,
    /// default 24), seeded (`ARCKFS_FUZZ_SEED`), no wall-clock dependence
    /// in the loop, quotas on, full vocabulary.
    pub fn smoke() -> FuzzOpts {
        let mut config = Config::arckfs_plus();
        // Reach the optional subsystems' inject points: the ranged data
        // path and group durability. Delegation rings stay OFF here — their
        // free-running worker threads race the quiesce grace deadline, and
        // the smoke's same-seed determinism contract can't survive that
        // (the nightly leg turns them on; it makes no determinism claim).
        config.range_locks = true;
        config.extent = true;
        config.batch = true;
        // The service-crate pooling shape, so quota charges flow through
        // the batched grant path.
        config.page_batch = 16;
        config.ino_batch = 8;
        config.pool_low = 8;
        config.pool_high = 64;
        FuzzOpts {
            seed: env_u64("ARCKFS_FUZZ_SEED", 0xf12f),
            max_execs: Some(env_u64("ARCKFS_FUZZ_EXECS", 24)),
            budget: None,
            program_min: 10,
            program_max: 50,
            threads: 3,
            tenants: 2,
            page_quota: Some(192),
            ino_quota: Some(96),
            crash_period: 6,
            crash_exhaustive_limit: 32,
            crash_samples: 6,
            grace: Duration::from_millis(env_u64("ARCKFS_SCHEDMC_GRACE_MS", 10)),
            max_steps: 4096,
            promote_after: 4,
            corpus_seeds: 4,
            vocabulary: FuzzOpKind::ALL.to_vec(),
            config,
        }
    }

    /// The nightly deep leg: wall-clock budgeted
    /// (`ARCKFS_FUZZ_BUDGET_MS`, default two minutes), unbounded execs,
    /// more crash samples, delegation rings on (the smoke leaves them off
    /// to keep its determinism contract).
    pub fn nightly() -> FuzzOpts {
        let mut opts = FuzzOpts::smoke();
        opts.max_execs = None;
        opts.budget = Some(Duration::from_millis(env_u64(
            "ARCKFS_FUZZ_BUDGET_MS",
            120_000,
        )));
        opts.crash_period = 4;
        opts.crash_samples = 12;
        opts.promote_after = 8;
        opts.config.delegation_threads = 2;
        opts.config.delegation_min = 4096;
        opts.config.deleg_batch = 2;
        opts
    }
}

// ---- invariants ------------------------------------------------------------

/// Where a mined invariant is in its lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InvariantStatus {
    /// Still on probation: violations demote, enough clean runs promote.
    Candidate,
    /// Held for [`FuzzOpts::promote_after`] runs; now a first-class
    /// oracle — violations fail the campaign.
    Promoted,
    /// Refuted while on probation; recorded, never enforced.
    Demoted,
}

impl InvariantStatus {
    /// Stable string form.
    pub fn name(self) -> &'static str {
        match self {
            InvariantStatus::Candidate => "candidate",
            InvariantStatus::Promoted => "promoted",
            InvariantStatus::Demoted => "demoted",
        }
    }
}

/// Ledger entry for one mined invariant.
#[derive(Debug, Clone)]
pub struct InvariantState {
    /// Lifecycle position.
    pub status: InvariantStatus,
    /// Consecutive clean evaluated runs (resets on violation).
    pub clean_runs: u64,
    /// Total violations observed (including the demoting one).
    pub violations: u64,
    /// First counterexample, for diagnostics.
    pub example: Option<String>,
}

impl Default for InvariantState {
    fn default() -> Self {
        InvariantState {
            status: InvariantStatus::Candidate,
            clean_runs: 0,
            violations: 0,
            example: None,
        }
    }
}

// ---- failures and reports --------------------------------------------------

/// A failing fuzz execution: everything needed to reproduce it.
#[derive(Debug, Clone)]
pub struct FuzzFailure {
    /// What the oracle saw.
    pub kind: FailureKind,
    /// Human-readable diagnosis.
    pub detail: String,
    /// The op program that was running.
    pub program: Vec<FuzzOp>,
    /// The executed choice sequence (tid per decision).
    pub schedule: Vec<usize>,
    /// The run seed (schedule walk and crash sampling).
    pub seed: u64,
}

impl FuzzFailure {
    /// A copy-pasteable reproduction line.
    pub fn replay_snippet(&self) -> String {
        let ops: Vec<String> = self
            .program
            .iter()
            .map(|o| {
                format!(
                    "FuzzOp {{ kind: FuzzOpKind::{:?}, tenant: {}, arg: {} }}",
                    o.kind, o.tenant, o.arg
                )
            })
            .collect();
        format!(
            "schedmc::fuzz::replay_fuzz(&[{}], &{:?}, &opts)",
            ops.join(", "),
            self.schedule
        )
    }
}

/// Aggregate result of a fuzzing campaign.
#[derive(Debug, Clone, Default)]
pub struct FuzzReport {
    /// Program executions completed.
    pub execs: u64,
    /// Corpus size at campaign end.
    pub corpus: usize,
    /// Distinct `(inject point, crash fingerprint)` pairs reached — the
    /// currency shared with [`crate::ExploreReport::coverage_pairs`].
    pub coverage_pairs: BTreeSet<(String, u64)>,
    /// Distinct `(inject point, log2 hit-count bucket)` pairs reached.
    pub point_buckets: BTreeSet<(String, u32)>,
    /// Total hits per point across the campaign.
    pub points_hit: BTreeMap<String, u64>,
    /// Executions that added new coverage (pairs or buckets).
    pub new_coverage_events: u64,
    /// Crash images checked.
    pub crash_states_checked: u64,
    /// Largest crash-state space seen.
    pub state_space_max: u64,
    /// Quota rejections tolerated (expected under quota pressure).
    pub quota_rejections: u64,
    /// Failing executions (capped so a broken build cannot flood memory).
    pub failures: Vec<FuzzFailure>,
    /// The mined-invariant ledger.
    pub invariants: BTreeMap<String, InvariantState>,
    /// Wall clock the campaign took.
    pub elapsed: Duration,
    /// True when the budget (not the exec bound) stopped the campaign.
    pub truncated: bool,
}

impl FuzzReport {
    /// True when no execution failed an oracle (including promoted
    /// invariants).
    pub fn is_clean(&self) -> bool {
        self.failures.is_empty()
    }

    /// Invariants currently in `status`.
    pub fn invariants_with(&self, status: InvariantStatus) -> Vec<&str> {
        self.invariants
            .iter()
            .filter(|(_, s)| s.status == status)
            .map(|(n, _)| n.as_str())
            .collect()
    }

    /// A stable hash of the coverage reached — the determinism regression
    /// asserts two same-seed campaigns produce equal values.
    pub fn coverage_fingerprint(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut eat = |bytes: &[u8]| {
            for &b in bytes {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
        };
        for (point, fp) in &self.coverage_pairs {
            eat(point.as_bytes());
            eat(&[0xff]);
            eat(&fp.to_le_bytes());
        }
        for (point, bucket) in &self.point_buckets {
            eat(point.as_bytes());
            eat(&[0xfe]);
            eat(&bucket.to_le_bytes());
        }
        h
    }

    /// The `fuzz` block of the obs JSON export.
    pub fn to_json(&self) -> serde_json::Value {
        let execs_per_sec = if self.elapsed.as_secs_f64() > 0.0 {
            self.execs as f64 / self.elapsed.as_secs_f64()
        } else {
            0.0
        };
        let mut invariants = serde_json::Map::new();
        for (name, st) in &self.invariants {
            invariants.insert(
                name.clone(),
                serde_json::json!({
                    "status": st.status.name(),
                    "clean_runs": st.clean_runs,
                    "violations": st.violations,
                    "example": st.example.clone(),
                }),
            );
        }
        let failures: Vec<serde_json::Value> = self
            .failures
            .iter()
            .map(|f| {
                serde_json::json!({
                    "kind": f.kind.name(),
                    "detail": f.detail.clone(),
                    "schedule": f.schedule.clone(),
                    "seed": f.seed,
                    "replay": f.replay_snippet(),
                })
            })
            .collect();
        serde_json::json!({
            "execs": self.execs,
            "execs_per_sec": execs_per_sec,
            "corpus": self.corpus,
            "coverage_pairs": self.coverage_pairs.len(),
            "point_buckets": self.point_buckets.len(),
            "points": self.points_hit.len(),
            "new_coverage_events": self.new_coverage_events,
            "crash_states_checked": self.crash_states_checked,
            "state_space_max": self.state_space_max,
            "quota_rejections": self.quota_rejections,
            "failures": failures,
            "invariants": serde_json::Value::Object(invariants),
            "invariants_promoted": self.invariants_with(InvariantStatus::Promoted).len(),
            "invariants_demoted": self.invariants_with(InvariantStatus::Demoted).len(),
            "coverage_fingerprint": format!("{:#018x}", self.coverage_fingerprint()),
            "elapsed_ms": self.elapsed.as_millis() as u64,
            "truncated": self.truncated,
        })
    }
}

/// Outcome of one [`replay_fuzz`] execution.
#[derive(Debug, Clone)]
pub struct FuzzReplay {
    /// The failure the pinned schedule reproduces, if any.
    pub failure: Option<FuzzFailure>,
    /// Raw invariant violations this run observed (name → detail) —
    /// replay has no mining ledger, so they are surfaced undigested.
    pub violations: BTreeMap<String, String>,
    /// Total hits per point.
    pub points_hit: BTreeMap<String, u64>,
    /// True when a requested choice was not schedulable and the default
    /// was taken instead.
    pub diverged_from_schedule: bool,
}

// ---- program generation and mutation ---------------------------------------

fn gen_op(rng: &mut SmallRng, opts: &FuzzOpts) -> FuzzOp {
    FuzzOp {
        kind: opts.vocabulary[rng.gen_range(0..opts.vocabulary.len())],
        tenant: rng.gen_range(0..opts.tenants.max(1)) as u8,
        arg: rng.gen_range(0..u16::MAX),
    }
}

fn gen_program(rng: &mut SmallRng, opts: &FuzzOpts) -> Vec<FuzzOp> {
    let len = rng.gen_range(opts.program_min..=opts.program_max);
    (0..len).map(|_| gen_op(rng, opts)).collect()
}

struct CorpusEntry {
    program: Vec<FuzzOp>,
    energy: u64,
}

fn pick_corpus(rng: &mut SmallRng, corpus: &[CorpusEntry]) -> usize {
    let total: u64 = corpus.iter().map(|e| e.energy).sum();
    let mut x = rng.gen_range(0..total.max(1));
    for (i, e) in corpus.iter().enumerate() {
        if x < e.energy {
            return i;
        }
        x -= e.energy;
    }
    corpus.len() - 1
}

/// One mutated child: 1–3 stacked mutations, length clamped to the
/// configured window.
fn mutate(rng: &mut SmallRng, corpus: &[CorpusEntry], opts: &FuzzOpts) -> Vec<FuzzOp> {
    let mut program = corpus[pick_corpus(rng, corpus)].program.clone();
    let rounds = 1 + rng.gen_range(0..3);
    for _ in 0..rounds {
        match rng.gen_range(0..5) {
            0 => {
                // Splice: head of this program, tail of another.
                let other = &corpus[pick_corpus(rng, corpus)].program;
                let cut_a = rng.gen_range(0..=program.len());
                let cut_b = rng.gen_range(0..=other.len());
                program.truncate(cut_a);
                program.extend_from_slice(&other[cut_b.min(other.len())..]);
            }
            1 => {
                let at = rng.gen_range(0..=program.len());
                program.insert(at, gen_op(rng, opts));
            }
            2 => {
                if program.len() > 1 {
                    let at = rng.gen_range(0..program.len());
                    program.remove(at);
                }
            }
            3 => {
                if !program.is_empty() {
                    let at = rng.gen_range(0..program.len());
                    program[at].arg = rng.gen_range(0..u16::MAX);
                }
            }
            _ => {
                if !program.is_empty() {
                    let at = rng.gen_range(0..program.len());
                    program[at].tenant = rng.gen_range(0..opts.tenants.max(1)) as u8;
                }
            }
        }
    }
    while program.len() < opts.program_min {
        program.push(gen_op(rng, opts));
    }
    program.truncate(opts.program_max);
    program
}

// ---- one fuzz execution ----------------------------------------------------

enum Plan<'a> {
    /// Seeded weighted random walk with preemption bursts.
    Walk(u64),
    /// Pin the recorded choice sequence; defaults past its end.
    Replay(&'a [usize]),
}

struct FuzzRun {
    failure: Option<(FailureKind, String)>,
    schedule: Vec<usize>,
    coverage: BTreeSet<(String, u64)>,
    points: BTreeMap<String, u64>,
    crash_states: u64,
    state_space_max: u64,
    quota_rejections: u64,
    /// Invariants this run could evaluate at least once.
    evaluated: BTreeSet<&'static str>,
    /// Invariant name → first counterexample this run.
    violated: BTreeMap<&'static str, String>,
    diverged_from_schedule: bool,
}

/// Walk-mode choice: keep the last thread ~70% of the time, otherwise
/// jump uniformly; 1-in-16 decisions arm a burst of 2–4 forced switches
/// (the preemption storms rare interleavings hide behind).
fn walk_choice(
    rng: &mut SmallRng,
    last: Option<usize>,
    tids: &[usize],
    burst: &mut usize,
) -> usize {
    if tids.len() == 1 {
        return tids[0];
    }
    if *burst > 0 {
        *burst -= 1;
        let others: Vec<usize> = tids
            .iter()
            .copied()
            .filter(|&t| Some(t) != last)
            .collect();
        return others[rng.gen_range(0..others.len())];
    }
    if rng.gen_range(0..16) == 0 {
        *burst = rng.gen_range(2..=4);
    }
    if let Some(l) = last {
        if tids.contains(&l) && rng.gen_range(0..10) < 7 {
            return l;
        }
    }
    tids[rng.gen_range(0..tids.len())]
}

/// Durable per-path file sizes of the persistent image (`None` when the
/// image has no walkable superblock yet).
fn durable_sizes(recovered: &Arc<PmemDevice>, geom: &trio::Geometry) -> Option<BTreeMap<String, u64>> {
    let snap = trio::logical_snapshot(recovered, geom).ok()?;
    Some(
        snap.into_iter()
            .filter(|e| e.itype == trio::InodeType::Regular)
            .map(|e| (e.path, e.size))
            .collect(),
    )
}

#[allow(clippy::too_many_lines)]
fn run_program(program: &[FuzzOp], plan: Plan<'_>, opts: &FuzzOpts) -> FuzzRun {
    let mut out = FuzzRun {
        failure: None,
        schedule: Vec::new(),
        coverage: BTreeSet::new(),
        points: BTreeMap::new(),
        crash_states: 0,
        state_space_max: 0,
        quota_rejections: 0,
        evaluated: BTreeSet::new(),
        violated: BTreeMap::new(),
        diverged_from_schedule: false,
    };
    let tracked = opts.crash_period > 0;
    let device = if tracked {
        PmemDevice::new_tracked(DEVICE_LEN)
    } else {
        PmemDevice::new(DEVICE_LEN)
    };
    let geom = trio::Geometry::for_device(DEVICE_LEN);
    let mut kconfig = KernelConfig::arckfs_plus()
        .with_page_quota(opts.page_quota)
        .with_ino_quota(opts.ino_quota);
    // The rename lease expires on wall-clock time and a waiter then
    // *steals* it. Under the controller a rename can sit parked at an
    // inject point for many grace periods while holding the lease, so a
    // 2s expiry turns lease steals — and therefore rename outcomes and
    // schedule shapes — into a function of host timing. Pin the expiry
    // far beyond any single run so same-seed walks are reproducible.
    kconfig.lease_timeout = Duration::from_secs(3600);
    let kernel = match Kernel::format(device.clone(), geom, kconfig) {
        Ok(k) => k,
        Err(e) => {
            out.failure = Some((FailureKind::OpFault, format!("format: {e}")));
            return out;
        }
    };
    let geom = *kernel.geometry();

    // Mount the tenants (service-crate hand-off: creating the home
    // acquires root, so release it once the home handle exists).
    let mut tenants: Vec<TenantCtx> = Vec::with_capacity(opts.tenants);
    for k in 0..opts.tenants {
        let uid = TENANT_UID_BASE + k as u32;
        let setup = (|| -> FsResult<TenantCtx> {
            let fs = LibFs::mount(kernel.clone(), opts.config.clone(), uid)?;
            let home = format!("/t{k}");
            fs.mkdir(&home)?;
            let home_fd = fs.open_dir(&home)?;
            fs.release_path("/")?;
            // Fixtures every op targets.
            for name in ["f0", "old", "u0"] {
                let fd = fs.open_at(home_fd, name, OpenFlags::rw().create())?;
                if name == "f0" {
                    fs.write_at(fd, b"base.", 0)?;
                }
                fs.close(fd)?;
            }
            fs.sync()?;
            Ok(TenantCtx {
                fs,
                home,
                home_fd,
                uid,
            })
        })();
        match setup {
            Ok(t) => tenants.push(t),
            Err(e) => {
                out.failure = Some((FailureKind::OpFault, format!("tenant {k} setup: {e}")));
                return out;
            }
        }
    }
    if tracked {
        // Known-durable baseline: only the program's own stores contribute
        // crash states (and size history) from here on.
        device.persist_all();
    }
    let tenant_uids: Vec<u32> = tenants.iter().map(|t| t.uid).collect();
    let tenants = Arc::new(tenants);
    let quota_hits = Arc::new(AtomicU64::new(0));

    // Stripe the program across the participant threads.
    let ctl = Controller::new();
    let mut handles = Vec::new();
    let threads = opts.threads.max(1);
    for t in 0..threads.min(program.len().max(1)) {
        let slice: Vec<FuzzOp> = program
            .iter()
            .enumerate()
            .filter(|(i, _)| i % threads == t)
            .map(|(_, op)| *op)
            .collect();
        let tenants = tenants.clone();
        let quota_hits = quota_hits.clone();
        let label = format!("w{t}");
        handles.push(ctl.spawn(&label, move || -> FsResult<()> {
            for op in slice {
                let ctx = &tenants[op.tenant as usize % tenants.len()];
                match op.run(ctx, t) {
                    Ok(()) => {}
                    Err(e) if e.is_quota() => {
                        quota_hits.fetch_add(1, Ordering::Relaxed);
                    }
                    Err(e) if FuzzOp::benign(&e) => {}
                    Err(e) => return Err(e),
                }
            }
            Ok(())
        }));
    }

    // Invariant scratch state for this run.
    let quotas_on = opts.page_quota.is_some() || opts.ino_quota.is_some();
    let mut last_sizes: Option<BTreeMap<String, u64>> = None;
    let note_violation = |out: &mut FuzzRun, name: &'static str, detail: String| {
        out.violated.entry(name).or_insert(detail);
    };

    let mut rng_and_burst = match &plan {
        Plan::Walk(seed) => Some((SmallRng::seed_from_u64(*seed), 0usize)),
        Plan::Replay(_) => None,
    };
    let mut last: Option<usize> = None;
    let mut stall = crate::WaitStall::default();
    loop {
        let mut runnable = ctl.quiesce(opts.grace);
        if runnable.is_empty() {
            if ctl.all_finished() {
                break;
            }
            runnable = ctl.quiesce(opts.grace * 10);
            if runnable.is_empty() {
                if ctl.all_finished() {
                    break;
                }
                out.failure = Some((
                    FailureKind::Deadlock,
                    format!("no schedulable participant; statuses: {:?}", ctl.statuses()),
                ));
                break;
            }
        }

        // Per-decision invariants: quota charges are cheap atomic reads.
        if quotas_on {
            out.evaluated.insert(INV_PAGE_CHARGE);
            out.evaluated.insert(INV_INO_CHARGE);
            for &uid in &tenant_uids {
                let uid = u64::from(uid);
                if let Some(q) = opts.page_quota {
                    let charged = kernel.allocator().charged(uid);
                    if charged > q {
                        note_violation(
                            &mut out,
                            INV_PAGE_CHARGE,
                            format!("tenant {uid}: page charge {charged} > quota {q}"),
                        );
                    }
                }
                if let Some(q) = opts.ino_quota {
                    let charged = kernel.ino_provider().charged(uid);
                    if charged > q {
                        note_violation(
                            &mut out,
                            INV_INO_CHARGE,
                            format!("tenant {uid}: inode charge {charged} > quota {q}"),
                        );
                    }
                }
            }
        }

        // Periodic crash oracle + durable-image invariants.
        let mut crash_fps: BTreeSet<u64> = BTreeSet::new();
        if tracked && out.schedule.len().is_multiple_of(opts.crash_period) {
            let seed = match &plan {
                Plan::Walk(s) => *s,
                Plan::Replay(_) => opts.seed,
            };
            match crashmc::check_bounded(
                &device,
                opts.crash_exhaustive_limit,
                opts.crash_samples,
                seed ^ out.schedule.len() as u64,
            ) {
                Ok(report) => {
                    out.crash_states += report.states as u64;
                    out.state_space_max = out.state_space_max.max(report.state_space);
                    crash_fps = report.fingerprints.clone();
                    if !report.is_consistent() {
                        out.failure = Some((
                            FailureKind::CrashInconsistent,
                            format!(
                                "{} of {} crash states fatal (space {}): {:?}",
                                report.fatal_states,
                                report.states,
                                report.state_space,
                                report.examples.first()
                            ),
                        ));
                        break;
                    }
                }
                Err(e) => {
                    out.failure =
                        Some((FailureKind::CrashInconsistent, format!("crash oracle: {e}")));
                    break;
                }
            }

            // Durable-image candidates, from one persistent snapshot.
            if let Ok(img) = device.persistent_image() {
                let recovered = PmemDevice::from_image(&img);
                drop(img);
                if let Ok(report) = trio::fsck::fsck(&recovered) {
                    out.evaluated.insert(INV_COMMIT_BEFORE_LINK);
                    if let Some(d) = report
                        .issues
                        .iter()
                        .find(|i| matches!(i, trio::FsckIssue::DanglingDentry { .. }))
                    {
                        note_violation(
                            &mut out,
                            INV_COMMIT_BEFORE_LINK,
                            format!("durable image has a dangling dentry: {d:?}"),
                        );
                    }
                }
                if let Some(sizes) = durable_sizes(&recovered, &geom) {
                    out.evaluated.insert(INV_SIZE_MONOTONE);
                    if let Some(prev) = &last_sizes {
                        for (path, old) in prev {
                            if let Some(new) = sizes.get(path) {
                                if new < old {
                                    note_violation(
                                        &mut out,
                                        INV_SIZE_MONOTONE,
                                        format!("{path}: durable size shrank {old} -> {new}"),
                                    );
                                }
                            }
                        }
                    }
                    last_sizes = Some(sizes);
                }
                if quotas_on {
                    if let Ok(usage) = trio::derive_tenant_usage(&recovered, &geom) {
                        out.evaluated.insert(INV_DURABLE_WITHIN_CHARGE);
                        for &uid in &tenant_uids {
                            let uid = u64::from(uid);
                            let durable =
                                usage.charges.get(&uid).map(|c| c.pages).unwrap_or(0);
                            let volatile = kernel.allocator().charged(uid);
                            if durable > volatile {
                                note_violation(
                                    &mut out,
                                    INV_DURABLE_WITHIN_CHARGE,
                                    format!(
                                        "tenant {uid}: durable pages {durable} > volatile charge {volatile}"
                                    ),
                                );
                            }
                        }
                    }
                }
            }
        }

        if out.schedule.len() >= opts.max_steps {
            out.failure = Some((
                FailureKind::Diverged,
                format!("run exceeded {} decisions", opts.max_steps),
            ));
            break;
        }

        // Pinned schedules keep authority over the *full* runnable set (a
        // minimized repro may deliberately grant a stalled waiter); walk
        // and fallback choices use the stall-filtered set.
        let all_tids: Vec<usize> = runnable.iter().map(|(t, _)| *t).collect();
        let tids = stall.filter(&runnable);
        let chosen = match &plan {
            Plan::Replay(schedule) => {
                if let Some(&want) = schedule.get(out.schedule.len()) {
                    if all_tids.contains(&want) {
                        want
                    } else {
                        out.diverged_from_schedule = true;
                        crate::default_choice(last, &tids)
                    }
                } else {
                    crate::default_choice(last, &tids)
                }
            }
            Plan::Walk(_) => {
                let (rng, burst) = rng_and_burst.as_mut().expect("walk mode has an rng");
                walk_choice(rng, last, &tids, burst)
            }
        };
        if let Some((_, point)) = runnable.iter().find(|(t, _)| *t == chosen) {
            for &fp in &crash_fps {
                out.coverage.insert((point.clone(), fp));
            }
            stall.note(chosen, point);
        }
        if std::env::var("ARCKFS_FUZZ_TRACE").is_ok() {
            eprintln!(
                "D{:03} runnable={:?} chosen={}",
                out.schedule.len(),
                runnable,
                chosen
            );
        }
        out.schedule.push(chosen);
        let stepped = ctl.step(chosen);
        debug_assert!(stepped, "runnable tid must accept the grant");
        last = Some(chosen);
    }

    for e in ctl.trace() {
        *out.points.entry(e.point).or_insert(0) += 1;
    }
    drop(ctl); // releases everyone (also on the early-failure paths)

    let mut op_results = Vec::new();
    for (t, h) in handles.into_iter().enumerate() {
        op_results.push((t, h.join()));
    }
    out.quota_rejections = quota_hits.load(Ordering::Relaxed);
    if out.failure.is_some() {
        return out;
    }

    for (t, r) in &op_results {
        match r {
            Err(panic) => {
                out.failure = Some((
                    FailureKind::OpPanicked,
                    format!("worker {t} panicked: {panic}"),
                ));
                return out;
            }
            Ok(Err(e)) => {
                // Benign errors never escape the worker loop, so anything
                // surfacing here — a modelled fault or an error this
                // vocabulary can't legitimately produce — is a failure.
                debug_assert!(fatal_op_error(e) || !FuzzOp::benign(e));
                out.failure = Some((FailureKind::OpFault, format!("worker {t} failed: {e}")));
                return out;
            }
            Ok(Ok(())) => {}
        }
    }

    // Root hand-back sweep: whichever tenant's last absolute-path walk
    // revived the root still owns it; only the owner's release succeeds,
    // everyone else's errs benignly. Without this the probe's walks below
    // would see `NotOwner` on a namespace that is perfectly coherent.
    for t in tenants.iter() {
        let _ = t.fs.release_path("/");
    }

    // Cache coherence per tenant: `stat_at` (dcache path) must agree with
    // `readdir` (authoritative walk) about every name in the pool.
    for t in tenants.iter() {
        let listed: Vec<String> = match t.fs.readdir(&t.home) {
            Ok(es) => es.into_iter().map(|e| e.name).collect(),
            Err(e) => {
                out.failure = Some((
                    FailureKind::CacheIncoherence,
                    format!("coherence readdir {}: {e}", t.home),
                ));
                return out;
            }
        };
        let _ = t.fs.release_path("/");
        for name in NAME_POOL {
            let via_stat = match t.fs.stat_at(t.home_fd, name) {
                Ok(_) => true,
                Err(FsError::NotFound) => false,
                Err(e) => {
                    out.failure = Some((
                        FailureKind::CacheIncoherence,
                        format!("coherence stat {}/{name}: {e}", t.home),
                    ));
                    return out;
                }
            };
            let via_readdir = listed.iter().any(|n| n == name);
            if via_stat != via_readdir {
                out.failure = Some((
                    FailureKind::CacheIncoherence,
                    format!(
                        "{}/{name}: stat resolves it = {via_stat}, readdir lists it = {via_readdir}",
                        t.home
                    ),
                ));
                return out;
            }
        }
    }

    for t in tenants.iter() {
        if let Err(e) = t.fs.unmount() {
            out.failure = Some((FailureKind::FsckFatal, format!("unmount {}: {e}", t.home)));
            return out;
        }
    }
    match trio::fsck::fsck(&device) {
        Ok(report) => {
            let fatal = report.fatal();
            if !fatal.is_empty() {
                out.failure = Some((
                    FailureKind::FsckFatal,
                    format!("post-run fsck: {:?}", fatal[0]),
                ));
            }
        }
        Err(e) => {
            out.failure = Some((FailureKind::FsckFatal, format!("post-run fsck: {e}")));
        }
    }
    out
}

// ---- campaign driver -------------------------------------------------------

/// Derive the per-execution seed from the campaign seed (splitmix64, so
/// neighbouring exec indices get decorrelated walks).
fn exec_seed(campaign: u64, exec: u64) -> u64 {
    let mut z = campaign ^ exec.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Run a coverage-guided fuzzing campaign.
///
/// Deterministic when [`FuzzOpts::budget`] is `None`: the loop is bounded
/// only by the exec count and every random draw derives from
/// [`FuzzOpts::seed`], so two same-seed campaigns reach the same coverage
/// (pinned by `tests/schedmc_found.rs`).
pub fn fuzz(opts: &FuzzOpts) -> FuzzReport {
    let start = Instant::now();
    let deadline = opts.budget.map(|b| start + b);
    let mut rng = SmallRng::seed_from_u64(opts.seed);
    let mut report = FuzzReport::default();

    let mut corpus: Vec<CorpusEntry> = (0..opts.corpus_seeds.max(1))
        .map(|_| CorpusEntry {
            program: gen_program(&mut rng, opts),
            energy: 1,
        })
        .collect();

    loop {
        if opts.max_execs.is_some_and(|m| report.execs >= m) {
            break;
        }
        if deadline.is_some_and(|d| Instant::now() >= d) {
            report.truncated = true;
            break;
        }
        if opts.max_execs.is_none() && deadline.is_none() {
            // No bound at all would spin forever; treat as "no work".
            break;
        }
        if report.failures.len() >= MAX_FUZZ_FAILURES {
            break;
        }

        let exec = report.execs;
        let program = if (exec as usize) < opts.corpus_seeds.max(1) {
            corpus[exec as usize].program.clone()
        } else {
            mutate(&mut rng, &corpus, opts)
        };
        let run_seed = exec_seed(opts.seed, exec);
        let run = run_program(&program, Plan::Walk(run_seed), opts);
        report.execs += 1;
        report.crash_states_checked += run.crash_states;
        report.state_space_max = report.state_space_max.max(run.state_space_max);
        report.quota_rejections += run.quota_rejections;
        for (point, n) in &run.points {
            *report.points_hit.entry(point.clone()).or_insert(0) += n;
        }

        // Coverage accounting: new pairs and new hit buckets.
        let mut novelty: u64 = 0;
        for pair in &run.coverage {
            if report.coverage_pairs.insert(pair.clone()) {
                novelty += 1;
            }
        }
        for (point, n) in &run.points {
            let bucket = 64 - n.leading_zeros();
            if report.point_buckets.insert((point.clone(), bucket)) {
                novelty += 1;
            }
        }
        if novelty > 0 {
            report.new_coverage_events += 1;
            corpus.push(CorpusEntry {
                program: program.clone(),
                energy: novelty,
            });
            if corpus.len() > CORPUS_CAP {
                let min = corpus
                    .iter()
                    .enumerate()
                    .min_by_key(|(_, e)| e.energy)
                    .map(|(i, _)| i)
                    .unwrap_or(0);
                corpus.remove(min);
            }
        }

        // Hard-oracle failure?
        if let Some((kind, detail)) = run.failure {
            report.failures.push(FuzzFailure {
                kind,
                detail,
                program: program.clone(),
                schedule: run.schedule.clone(),
                seed: run_seed,
            });
            continue; // a failing run's invariant evidence is tainted
        }

        // Invariant mining lifecycle.
        for name in &run.evaluated {
            let st = report.invariants.entry((*name).to_string()).or_default();
            if let Some(detail) = run.violated.get(name) {
                st.violations += 1;
                st.clean_runs = 0;
                if st.example.is_none() {
                    st.example = Some(detail.clone());
                }
                match st.status {
                    InvariantStatus::Promoted => {
                        report.failures.push(FuzzFailure {
                            kind: FailureKind::InvariantViolated,
                            detail: format!("promoted invariant '{name}' violated: {detail}"),
                            program: program.clone(),
                            schedule: run.schedule.clone(),
                            seed: run_seed,
                        });
                    }
                    InvariantStatus::Candidate => st.status = InvariantStatus::Demoted,
                    InvariantStatus::Demoted => {}
                }
            } else {
                st.clean_runs += 1;
                if st.status == InvariantStatus::Candidate && st.clean_runs >= opts.promote_after {
                    st.status = InvariantStatus::Promoted;
                }
            }
        }
    }

    report.corpus = corpus.len();
    report.elapsed = start.elapsed();
    report
}

/// Run one seeded walk of `program` and expose its raw schedule, coverage,
/// and point counts — a determinism-debugging hook, not a public API.
#[doc(hidden)]
#[allow(clippy::type_complexity)]
pub fn debug_walk(
    program: &[FuzzOp],
    run_seed: u64,
    opts: &FuzzOpts,
) -> (
    Vec<usize>,
    BTreeSet<(String, u64)>,
    BTreeMap<String, u64>,
    Option<(FailureKind, String)>,
) {
    let run = run_program(program, Plan::Walk(run_seed), opts);
    (run.schedule, run.coverage, run.points, run.failure)
}

/// Re-execute `program` with the recorded `schedule` pinned (defaults past
/// its end), running every oracle.
pub fn replay_fuzz(program: &[FuzzOp], schedule: &[usize], opts: &FuzzOpts) -> FuzzReplay {
    let run = run_program(program, Plan::Replay(schedule), opts);
    FuzzReplay {
        failure: run.failure.map(|(kind, detail)| FuzzFailure {
            kind,
            detail,
            program: program.to_vec(),
            schedule: run.schedule.clone(),
            seed: opts.seed,
        }),
        violations: run
            .violated
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
        points_hit: run.points,
        diverged_from_schedule: run.diverged_from_schedule,
    }
}

/// Shrink a failing program: repeatedly drop ops while re-running the same
/// seeded walk still reproduces a failure of `kind`. Returns the minimized
/// program and its pinned schedule.
pub fn minimize(
    program: &[FuzzOp],
    run_seed: u64,
    kind: FailureKind,
    opts: &FuzzOpts,
) -> (Vec<FuzzOp>, Vec<usize>) {
    let mut cur = program.to_vec();
    loop {
        let mut shrunk = false;
        let mut i = 0;
        while i < cur.len() && cur.len() > 1 {
            let mut cand = cur.clone();
            cand.remove(i);
            let run = run_program(&cand, Plan::Walk(run_seed), opts);
            if run.failure.as_ref().map(|f| f.0) == Some(kind) {
                cur = cand;
                shrunk = true;
            } else {
                i += 1;
            }
        }
        if !shrunk {
            break;
        }
    }
    let run = run_program(&cur, Plan::Walk(run_seed), opts);
    (cur, run.schedule)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> FuzzOpts {
        FuzzOpts {
            max_execs: Some(3),
            crash_period: 8,
            crash_samples: 3,
            program_min: 6,
            program_max: 12,
            corpus_seeds: 2,
            promote_after: 1,
            ..FuzzOpts::smoke()
        }
    }

    #[test]
    fn tiny_campaign_is_clean_and_covers() {
        let report = fuzz(&tiny());
        assert_eq!(report.execs, 3);
        assert!(report.is_clean(), "failures: {:?}", report.failures);
        assert!(!report.points_hit.is_empty(), "no points hit");
        assert!(
            !report.coverage_pairs.is_empty(),
            "crash oracle produced no coverage pairs"
        );
        assert!(report.new_coverage_events > 0);
    }

    #[test]
    fn generation_respects_bounds() {
        let opts = tiny();
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..50 {
            let p = gen_program(&mut rng, &opts);
            assert!(p.len() >= opts.program_min && p.len() <= opts.program_max);
            for op in &p {
                assert!((op.tenant as usize) < opts.tenants);
            }
            let m = mutate(
                &mut rng,
                &[CorpusEntry {
                    program: p,
                    energy: 1,
                }],
                &opts,
            );
            assert!(m.len() >= opts.program_min && m.len() <= opts.program_max);
        }
    }

    #[test]
    fn replay_of_clean_program_is_clean() {
        let opts = tiny();
        let program: Vec<FuzzOp> = vec![
            FuzzOp {
                kind: FuzzOpKind::Create,
                tenant: 0,
                arg: 1,
            },
            FuzzOp {
                kind: FuzzOpKind::Rename,
                tenant: 1,
                arg: 0,
            },
            FuzzOp {
                kind: FuzzOpKind::Append,
                tenant: 0,
                arg: 0,
            },
        ];
        let replay = replay_fuzz(&program, &[], &opts);
        assert!(replay.failure.is_none(), "{:?}", replay.failure);
        assert!(!replay.points_hit.is_empty());
    }
}
