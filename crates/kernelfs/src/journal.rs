//! Metadata journal over the PM emulator.
//!
//! A ring of fixed-size records in a dedicated device region. The write
//! discipline matches the journaling mode:
//!
//! * **Redo** (ext4's jbd2, Strata's digest): record → flush → fence →
//!   commit mark → flush → fence, then the in-place update → flush → fence
//!   (every metadata update reaches PM twice).
//! * **Undo** (PMFS): old value logged → flush → fence, in-place update →
//!   flush → fence, log entry invalidated (no fence needed).
//!
//! The journal is a real data structure (the records land on the device and
//! wrap around), so its cost in flushes, fences and bytes is organic rather
//! than simulated.

use std::sync::Arc;

use parking_lot::Mutex;
use pmem::{PmemDevice, PmemResult};

use crate::profile::JournalMode;

/// Fixed journal record size (one cache line of payload + one of header).
pub const RECORD_SIZE: u64 = 128;

/// A metadata journal ring.
#[derive(Debug)]
pub struct Journal {
    device: Arc<PmemDevice>,
    start: u64,
    len: u64,
    mode: JournalMode,
    head: Mutex<u64>,
}

impl Journal {
    /// A journal over `[start, start + len)` of the device.
    pub fn new(device: Arc<PmemDevice>, start: u64, len: u64, mode: JournalMode) -> Self {
        Journal {
            device,
            start,
            len,
            mode,
            head: Mutex::new(0),
        }
    }

    /// The journaling mode.
    pub fn mode(&self) -> JournalMode {
        self.mode
    }

    fn next_slot(&self) -> u64 {
        let mut head = self.head.lock();
        let slot = self.start + (*head % (self.len / RECORD_SIZE)) * RECORD_SIZE;
        *head += 1;
        slot
    }

    /// Journal one metadata update of `payload` bytes targeting device
    /// offset `target`, following the mode's discipline. In `Redo` mode the
    /// in-place update is performed by the journal (after commit); in
    /// `Undo` mode the caller's old value is logged first and the caller
    /// performs the update through `Journal::apply_inplace`.
    pub fn log_update(&self, target: u64, payload: &[u8]) -> PmemResult<()> {
        debug_assert!(payload.len() as u64 <= RECORD_SIZE - 32);
        match self.mode {
            JournalMode::None => {
                // Direct in-place persist.
                self.device.write(target, payload)?;
                self.device.persist(target, payload.len())?;
            }
            JournalMode::Undo => {
                // Log the old value...
                let slot = self.next_slot();
                let mut old = vec![0u8; payload.len()];
                self.device.read(target, &mut old)?;
                self.device.write_u64(slot, target)?;
                self.device.write_u64(slot + 8, payload.len() as u64)?;
                self.device.write(slot + 32, &old)?;
                self.device.persist(slot, 32 + payload.len())?;
                // ...update in place...
                self.device.write(target, payload)?;
                self.device.persist(target, payload.len())?;
                // ...invalidate the record (lazily persisted).
                self.device.write_u64(slot, 0)?;
                self.device.clwb(slot, 8)?;
            }
            JournalMode::Redo => {
                // Log the new value and commit...
                let slot = self.next_slot();
                self.device.write_u64(slot, target)?;
                self.device.write_u64(slot + 8, payload.len() as u64)?;
                self.device.write(slot + 32, payload)?;
                self.device.persist(slot, 32 + payload.len())?;
                self.device.write_u64(slot + 16, 1)?; // commit mark
                self.device.persist(slot + 16, 8)?;
                // ...then checkpoint in place.
                self.device.write(target, payload)?;
                self.device.persist(target, payload.len())?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup(mode: JournalMode) -> (Arc<PmemDevice>, Journal) {
        let dev = PmemDevice::new(1 << 20);
        let j = Journal::new(dev.clone(), 0, 64 * RECORD_SIZE, mode);
        (dev, j)
    }

    #[test]
    fn update_lands_in_place_for_every_mode() {
        for mode in [JournalMode::None, JournalMode::Undo, JournalMode::Redo] {
            let (dev, j) = setup(mode);
            j.log_update(64 * 1024, b"metadata!").unwrap();
            let mut b = [0u8; 9];
            dev.read(64 * 1024, &mut b).unwrap();
            assert_eq!(&b, b"metadata!", "mode {mode:?}");
        }
    }

    #[test]
    fn redo_costs_more_fences_than_none() {
        let (dev_n, j_n) = setup(JournalMode::None);
        j_n.log_update(64 * 1024, b"x").unwrap();
        let fences_none = dev_n.stats().snapshot().sfences;

        let (dev_r, j_r) = setup(JournalMode::Redo);
        j_r.log_update(64 * 1024, b"x").unwrap();
        let fences_redo = dev_r.stats().snapshot().sfences;

        assert!(
            fences_redo > fences_none,
            "redo journaling must fence more ({fences_redo} vs {fences_none})"
        );
    }

    #[test]
    fn ring_wraps() {
        let (_dev, j) = setup(JournalMode::Undo);
        for i in 0..200 {
            j.log_update(128 * 1024 + i * 8, &i.to_le_bytes()).unwrap();
        }
        // 200 records through a 64-slot ring: no panic, head advanced.
        assert!(*j.head.lock() == 200);
    }
}
