#![warn(missing_docs)]

//! Baseline file systems for the paper's comparison set.
//!
//! The evaluation (§5) compares ArckFS/ArckFS+ against ext4, PMFS, NOVA,
//! OdinFS, WineFS, SplitFS and Strata. Those systems differ from ArckFS —
//! and from each other — in exactly the cost components this crate models
//! on top of the shared PM emulator:
//!
//! * **kernel crossings**: every operation of a kernel file system enters
//!   the kernel through a syscall and the VFS layer ([`Profile::syscall_cost`]);
//!   SplitFS/Strata-class userspace designs cross only for metadata.
//! * **journaling/logging**: ext4 journals metadata twice (journal +
//!   checkpoint), PMFS keeps a fine-grained undo journal, NOVA/WineFS/OdinFS
//!   append to per-inode logs — all implemented as real PM writes with the
//!   corresponding flushes and fences ([`journal`]).
//! * **locking granularity**: POSIX kernel file systems serialize directory
//!   modifications on the parent inode's mutex, which is what collapses
//!   their shared-directory scalability in FxMark (MWCM/MWUM); ArckFS's
//!   per-bucket locks avoid that.
//! * **data path**: OdinFS delegates large I/O to non-temporal stores;
//!   Strata digests its update log (extra flushes per metadata op).
//!
//! The result is a *real* file system (namespace, block allocation, data
//! pages on the emulated device) whose relative costs reproduce the shape
//! of the paper's baselines. Crash recovery for the baselines is out of
//! scope — no experiment in the paper exercises it.

pub mod fs;
pub mod journal;
pub mod profile;

pub use fs::KernelFs;
pub use profile::{JournalMode, Profile};
