//! Per-baseline cost and behaviour profiles.

use std::time::Duration;

/// Metadata journaling discipline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JournalMode {
    /// No journal (metadata persisted in place; NOVA-class systems use
    /// their per-inode logs instead).
    None,
    /// Undo journal: old values logged before in-place update (PMFS).
    Undo,
    /// Redo journal: new values logged, committed, then checkpointed —
    /// every metadata update hits PM twice (ext4's jbd2).
    Redo,
}

/// The knobs distinguishing the paper's baseline file systems.
#[derive(Debug, Clone)]
pub struct Profile {
    /// Display name used in benchmark tables.
    pub name: &'static str,
    /// Cost of a kernel crossing charged on every operation that enters
    /// the kernel — the syscall trap plus the VFS dispatch, dcache path
    /// walk and permission checks that userspace direct access avoids
    /// entirely (the motivation in the paper's §1: kernel file systems
    /// "incur non-negligible overhead" through syscalls and the VFS
    /// layer).
    pub syscall_cost: Duration,
    /// Whether *data* operations also cross into the kernel (true for all
    /// kernel file systems, false for SplitFS/Strata-class designs that
    /// serve data in userspace).
    pub data_ops_enter_kernel: bool,
    /// Metadata journaling mode.
    pub journal: JournalMode,
    /// Per-inode log append on each metadata operation (NOVA-class).
    pub inode_log: bool,
    /// Extra PM writes per metadata operation (Strata's log digest, ext4's
    /// block-group bookkeeping...), in cache lines.
    pub extra_meta_lines: u32,
    /// Large data writes bypass the cache via non-temporal stores
    /// (OdinFS-style delegation).
    pub data_ntstore: bool,
}

impl Profile {
    /// ext4 (DAX): full kernel path, redo journal, extra bookkeeping.
    pub fn ext4() -> Self {
        Profile {
            name: "ext4",
            syscall_cost: Duration::from_nanos(2600),
            data_ops_enter_kernel: true,
            journal: JournalMode::Redo,
            inode_log: false,
            extra_meta_lines: 4,
            data_ntstore: false,
        }
    }

    /// PMFS: kernel PM file system with a fine-grained undo journal.
    pub fn pmfs() -> Self {
        Profile {
            name: "pmfs",
            syscall_cost: Duration::from_nanos(2100),
            data_ops_enter_kernel: true,
            journal: JournalMode::Undo,
            inode_log: false,
            extra_meta_lines: 1,
            data_ntstore: false,
        }
    }

    /// NOVA: log-structured kernel PM file system (per-inode logs).
    pub fn nova() -> Self {
        Profile {
            name: "nova",
            syscall_cost: Duration::from_nanos(2100),
            data_ops_enter_kernel: true,
            journal: JournalMode::None,
            inode_log: true,
            extra_meta_lines: 0,
            data_ntstore: false,
        }
    }

    /// WineFS: hugepage-aware PM file system; NOVA-like logging with
    /// slightly cheaper allocation.
    pub fn winefs() -> Self {
        Profile {
            name: "winefs",
            syscall_cost: Duration::from_nanos(2100),
            data_ops_enter_kernel: true,
            journal: JournalMode::Undo,
            inode_log: false,
            extra_meta_lines: 0,
            data_ntstore: false,
        }
    }

    /// OdinFS: NOVA-class metadata plus delegated (non-temporal) data I/O.
    pub fn odinfs() -> Self {
        Profile {
            name: "odinfs",
            syscall_cost: Duration::from_nanos(2100),
            data_ops_enter_kernel: true,
            journal: JournalMode::None,
            inode_log: true,
            extra_meta_lines: 0,
            data_ntstore: true,
        }
    }

    /// SplitFS: data served in userspace, metadata operations relayed to a
    /// trusted kernel component per operation.
    pub fn splitfs() -> Self {
        Profile {
            name: "splitfs",
            syscall_cost: Duration::from_nanos(1800),
            data_ops_enter_kernel: false,
            journal: JournalMode::Undo,
            inode_log: false,
            extra_meta_lines: 1,
            data_ntstore: false,
        }
    }

    /// Strata: userspace update log digested by a trusted component;
    /// metadata integrity enforced per operation.
    pub fn strata() -> Self {
        Profile {
            name: "strata",
            syscall_cost: Duration::from_nanos(1900),
            data_ops_enter_kernel: false,
            journal: JournalMode::Redo,
            inode_log: false,
            extra_meta_lines: 2,
            data_ntstore: false,
        }
    }

    /// All seven baselines, in the paper's order.
    pub fn all() -> Vec<Profile> {
        vec![
            Profile::ext4(),
            Profile::pmfs(),
            Profile::nova(),
            Profile::winefs(),
            Profile::odinfs(),
            Profile::splitfs(),
            Profile::strata(),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_profiles_distinct_names() {
        let all = Profile::all();
        let mut names: Vec<_> = all.iter().map(|p| p.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 7);
    }

    #[test]
    fn userspace_designs_skip_kernel_for_data() {
        assert!(!Profile::splitfs().data_ops_enter_kernel);
        assert!(!Profile::strata().data_ops_enter_kernel);
        assert!(Profile::ext4().data_ops_enter_kernel);
    }
}
