//! The baseline file system.
//!
//! One implementation serves all seven baseline profiles: a kernel-style
//! file system with a DRAM namespace index (NOVA keeps its radix trees in
//! DRAM the same way), per-inode locks with POSIX semantics (directory
//! modifications serialize on the parent), metadata persisted through the
//! [`crate::journal::Journal`] per the profile's mode, and data pages
//! allocated from the emulated device.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::{Mutex, RwLock};

use pmem::{LatencyModel, PmemDevice, PAGE_SIZE};
use vfs::{
    path as vpath, DirEntry, Fd, FileSystem, FileType, FsError, FsResult, FsStats, Metadata,
    OpenFlags,
};

use crate::journal::{Journal, RECORD_SIZE};
use crate::profile::Profile;

const ROOT: u64 = 1;
/// Size of an on-PM inode record for the baselines.
const INODE_BYTES: usize = 64;

#[derive(Debug)]
enum Body {
    Dir(HashMap<String, u64>),
    File { size: u64, pages: Vec<u64> },
}

#[derive(Debug)]
struct Node {
    ino: u64,
    body: RwLock<Body>,
}

#[derive(Debug, Clone)]
struct FdEntry {
    ino: u64,
    flags: OpenFlags,
    /// Normalized absolute path, recorded for handles opened with
    /// `open_dir` — the baselines keep the trait's path-delegating `*at`
    /// defaults, which reconstruct `dir/name` through `fd_dir_path`.
    dir_path: Option<String>,
}

/// A baseline file system instance (see the crate docs).
pub struct KernelFs {
    device: Arc<PmemDevice>,
    profile: Profile,
    journal: Journal,
    nodes: RwLock<HashMap<u64, Arc<Node>>>,
    next_ino: AtomicU64,
    /// Bump allocator over the data region with a free list for reuse.
    next_page: AtomicU64,
    free_pages: Mutex<Vec<u64>>,
    /// Per-inode-log bump pointer (NOVA-class profiles).
    log_cursor: AtomicU64,
    log_region: (u64, u64),
    inode_region: u64,
    scratch: u64,
    fds: RwLock<HashMap<u64, FdEntry>>,
    next_fd: AtomicU64,
    /// The VFS cross-directory rename mutex.
    rename_mutex: Mutex<()>,
    syscalls: AtomicU64,
    shared_lock_acqs: AtomicU64,
    max_pages: u64,
}

impl std::fmt::Debug for KernelFs {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("KernelFs")
            .field("profile", &self.profile.name)
            .finish()
    }
}

impl KernelFs {
    /// Format a baseline file system over a fresh device.
    pub fn format(device: Arc<PmemDevice>, profile: Profile) -> Arc<KernelFs> {
        let pages = device.page_count();
        assert!(pages > 256, "device too small for the baseline layout");
        // Layout: page 0 reserved; journal pages 1..33; inode records
        // 33..97; per-inode log region 97..161; scratch 161; data from 162.
        let journal = Journal::new(
            device.clone(),
            PAGE_SIZE as u64,
            32 * PAGE_SIZE as u64 / RECORD_SIZE * RECORD_SIZE,
            profile.journal,
        );
        let inode_region = 33 * PAGE_SIZE as u64;
        let log_region = (97 * PAGE_SIZE as u64, 64 * PAGE_SIZE as u64);
        let scratch = 161 * PAGE_SIZE as u64;
        let fs = KernelFs {
            device,
            profile,
            journal,
            nodes: RwLock::new(HashMap::new()),
            next_ino: AtomicU64::new(ROOT + 1),
            next_page: AtomicU64::new(162),
            free_pages: Mutex::new(Vec::new()),
            log_cursor: AtomicU64::new(0),
            log_region,
            inode_region,
            scratch,
            fds: RwLock::new(HashMap::new()),
            next_fd: AtomicU64::new(3),
            rename_mutex: Mutex::new(()),
            syscalls: AtomicU64::new(0),
            shared_lock_acqs: AtomicU64::new(0),
            max_pages: pages,
        };
        fs.nodes.write().insert(
            ROOT,
            Arc::new(Node {
                ino: ROOT,
                body: RwLock::new(Body::Dir(HashMap::new())),
            }),
        );
        Arc::new(fs)
    }

    /// Convenience: fresh device of `len` bytes + format.
    pub fn new(len: usize, profile: Profile) -> Arc<KernelFs> {
        Self::format(PmemDevice::new(len), profile)
    }

    /// The underlying device (for stats in the harness).
    pub fn device(&self) -> &Arc<PmemDevice> {
        &self.device
    }

    fn enter(&self, is_data: bool) {
        if is_data && !self.profile.data_ops_enter_kernel {
            return;
        }
        self.syscalls.fetch_add(1, Ordering::Relaxed);
        if !self.profile.syscall_cost.is_zero() {
            LatencyModel::spin(self.profile.syscall_cost);
        }
    }

    fn count_lock(&self) {
        self.shared_lock_acqs.fetch_add(1, Ordering::Relaxed);
    }

    fn alloc_page(&self) -> FsResult<u64> {
        if let Some(p) = self.free_pages.lock().pop() {
            return Ok(p);
        }
        let p = self.next_page.fetch_add(1, Ordering::Relaxed);
        if p >= self.max_pages {
            return Err(FsError::NoSpace);
        }
        Ok(p)
    }

    fn node(&self, ino: u64) -> FsResult<Arc<Node>> {
        self.nodes
            .read()
            .get(&ino)
            .cloned()
            .ok_or(FsError::NotFound)
    }

    /// Persist a metadata update for `ino` per the profile: journal the
    /// inode record, append to the per-inode log if configured, and charge
    /// the profile's extra bookkeeping lines.
    fn persist_meta(&self, ino: u64, record: &[u8]) -> FsResult<()> {
        let target = self.inode_region + (ino % 4096) * INODE_BYTES as u64;
        self.journal
            .log_update(target, record)
            .map_err(|e| FsError::Internal(e.to_string()))?;
        if self.profile.inode_log {
            let cap = self.log_region.1 / 64;
            let slot = self.log_cursor.fetch_add(1, Ordering::Relaxed) % cap;
            let off = self.log_region.0 + slot * 64;
            let mut entry = [0u8; 64];
            entry[..8].copy_from_slice(&ino.to_le_bytes());
            let n = record.len().min(48);
            entry[16..16 + n].copy_from_slice(&record[..n]);
            self.device
                .write(off, &entry)
                .and_then(|_| self.device.persist(off, 64))
                .map_err(|e| FsError::Internal(e.to_string()))?;
        }
        for i in 0..self.profile.extra_meta_lines {
            let off = self.scratch + (i as u64 % 60) * 64;
            self.device
                .write(off, &[0xAB; 64])
                .and_then(|_| self.device.persist(off, 64))
                .map_err(|e| FsError::Internal(e.to_string()))?;
        }
        Ok(())
    }

    fn meta_record(&self, ino: u64, ftype: u8, size: u64) -> [u8; 32] {
        let mut r = [0u8; 32];
        r[..8].copy_from_slice(&ino.to_le_bytes());
        r[8] = ftype;
        r[16..24].copy_from_slice(&size.to_le_bytes());
        r
    }

    fn resolve(&self, comps: &[&str]) -> FsResult<Arc<Node>> {
        let mut cur = self.node(ROOT)?;
        for c in comps {
            self.count_lock();
            let next = {
                let body = cur.body.read();
                match &*body {
                    Body::Dir(map) => *map.get(*c).ok_or(FsError::NotFound)?,
                    Body::File { .. } => return Err(FsError::NotADirectory),
                }
            };
            cur = self.node(next)?;
        }
        Ok(cur)
    }

    fn resolve_path(&self, path: &str) -> FsResult<Arc<Node>> {
        let comps = vpath::components(path)?;
        self.resolve(&comps)
    }

    fn create_node(&self, path: &str, dir: bool) -> FsResult<u64> {
        let (parent_comps, name) = vpath::split_parent(path)?;
        vpath::validate_name(name)?;
        let parent = self.resolve(&parent_comps)?;
        // POSIX: the parent directory's lock serializes the modification —
        // this is the shared-directory bottleneck of the kernel baselines.
        self.count_lock();
        let mut body = parent.body.write();
        let map = match &mut *body {
            Body::Dir(m) => m,
            Body::File { .. } => return Err(FsError::NotADirectory),
        };
        if map.contains_key(name) {
            return Err(FsError::AlreadyExists);
        }
        let ino = self.next_ino.fetch_add(1, Ordering::Relaxed);
        let node = Arc::new(Node {
            ino,
            body: RwLock::new(if dir {
                Body::Dir(HashMap::new())
            } else {
                Body::File {
                    size: 0,
                    pages: Vec::new(),
                }
            }),
        });
        self.nodes.write().insert(ino, node);
        map.insert(name.to_string(), ino);
        // Two metadata updates persist: the new inode and the parent.
        let rec = self.meta_record(ino, if dir { 2 } else { 1 }, 0);
        self.persist_meta(ino, &rec)?;
        let prec = self.meta_record(parent.ino, 2, map.len() as u64);
        self.persist_meta(parent.ino, &prec)?;
        Ok(ino)
    }

    fn remove_node(&self, path: &str, want_dir: bool) -> FsResult<()> {
        let (parent_comps, name) = vpath::split_parent(path)?;
        let parent = self.resolve(&parent_comps)?;
        self.count_lock();
        let mut body = parent.body.write();
        let map = match &mut *body {
            Body::Dir(m) => m,
            Body::File { .. } => return Err(FsError::NotADirectory),
        };
        let ino = *map.get(name).ok_or(FsError::NotFound)?;
        let node = self.node(ino)?;
        {
            let nb = node.body.read();
            match (&*nb, want_dir) {
                (Body::Dir(_), false) => return Err(FsError::IsADirectory),
                (Body::File { .. }, true) => return Err(FsError::NotADirectory),
                (Body::Dir(children), true) if !children.is_empty() => {
                    return Err(FsError::NotEmpty)
                }
                _ => {}
            }
        }
        map.remove(name);
        if let Body::File { pages, .. } = &*node.body.read() {
            self.free_pages.lock().extend(pages.iter().copied());
        }
        self.nodes.write().remove(&ino);
        let rec = self.meta_record(ino, 0, 0);
        self.persist_meta(ino, &rec)?;
        let prec = self.meta_record(parent.ino, 2, map.len() as u64);
        self.persist_meta(parent.ino, &prec)?;
        Ok(())
    }

    fn file_fd(&self, fd: Fd) -> FsResult<(Arc<Node>, FdEntry)> {
        let entry = self
            .fds
            .read()
            .get(&fd.0)
            .cloned()
            .ok_or(FsError::BadDescriptor)?;
        let node = self.node(entry.ino)?;
        Ok((node, entry))
    }
}

impl FileSystem for KernelFs {
    fn fs_name(&self) -> &str {
        self.profile.name
    }

    fn create(&self, path: &str) -> FsResult<Fd> {
        let _span = obs::span(obs::OpKind::Create, self.device.stats());
        self.enter(false);
        let ino = self.create_node(path, false)?;
        let fd = Fd(self.next_fd.fetch_add(1, Ordering::Relaxed));
        self.fds.write().insert(
            fd.0,
            FdEntry {
                ino,
                flags: OpenFlags::rw(),
                dir_path: None,
            },
        );
        Ok(fd)
    }

    fn open(&self, path: &str, flags: OpenFlags) -> FsResult<Fd> {
        let _span = obs::span(obs::OpKind::Open, self.device.stats());
        self.enter(false);
        let ino = match self.resolve_path(path) {
            Ok(node) => {
                if flags.create && flags.excl {
                    return Err(FsError::AlreadyExists);
                }
                if matches!(&*node.body.read(), Body::Dir(_)) {
                    return Err(FsError::IsADirectory);
                }
                if flags.truncate {
                    if !flags.write {
                        return Err(FsError::BadAccessMode);
                    }
                    self.count_lock();
                    let mut body = node.body.write();
                    if let Body::File { size, pages } = &mut *body {
                        self.free_pages.lock().extend(pages.drain(..));
                        *size = 0;
                    }
                    let rec = self.meta_record(node.ino, 1, 0);
                    self.persist_meta(node.ino, &rec)?;
                }
                node.ino
            }
            Err(FsError::NotFound) if flags.create => self.create_node(path, false)?,
            Err(e) => return Err(e),
        };
        let fd = Fd(self.next_fd.fetch_add(1, Ordering::Relaxed));
        self.fds.write().insert(
            fd.0,
            FdEntry {
                ino,
                flags,
                dir_path: None,
            },
        );
        Ok(fd)
    }

    fn close(&self, fd: Fd) -> FsResult<()> {
        let _span = obs::span(obs::OpKind::Close, self.device.stats());
        self.fds
            .write()
            .remove(&fd.0)
            .map(|_| ())
            .ok_or(FsError::BadDescriptor)
    }

    fn read_at(&self, fd: Fd, buf: &mut [u8], offset: u64) -> FsResult<usize> {
        let _span = obs::span(obs::OpKind::Read, self.device.stats());
        self.enter(true);
        let (node, entry) = self.file_fd(fd)?;
        if !entry.flags.read {
            return Err(FsError::BadAccessMode);
        }
        self.count_lock();
        let body = node.body.read();
        let (size, pages) = match &*body {
            Body::File { size, pages } => (*size, pages),
            Body::Dir(_) => return Err(FsError::IsADirectory),
        };
        if offset >= size {
            return Ok(0);
        }
        let want = (buf.len() as u64).min(size - offset) as usize;
        let mut done = 0;
        while done < want {
            let pos = offset + done as u64;
            let idx = (pos / PAGE_SIZE as u64) as usize;
            let in_page = (pos % PAGE_SIZE as u64) as usize;
            let n = (PAGE_SIZE - in_page).min(want - done);
            match pages.get(idx) {
                Some(&p) if p != 0 => self
                    .device
                    .read(
                        p * PAGE_SIZE as u64 + in_page as u64,
                        &mut buf[done..done + n],
                    )
                    .map_err(|e| FsError::Internal(e.to_string()))?,
                _ => buf[done..done + n].fill(0),
            }
            done += n;
        }
        Ok(want)
    }

    fn write_at(&self, fd: Fd, buf: &[u8], offset: u64) -> FsResult<usize> {
        let _span = obs::span(obs::OpKind::Write, self.device.stats());
        self.enter(true);
        let (node, entry) = self.file_fd(fd)?;
        if !entry.flags.write {
            return Err(FsError::BadAccessMode);
        }
        self.count_lock();
        let mut body = node.body.write();
        let (size, pages) = match &mut *body {
            Body::File { size, pages } => (size, pages),
            Body::Dir(_) => return Err(FsError::IsADirectory),
        };
        let use_nt = self.profile.data_ntstore && buf.len() >= PAGE_SIZE;
        let mut done = 0;
        while done < buf.len() {
            let pos = offset + done as u64;
            let idx = (pos / PAGE_SIZE as u64) as usize;
            let in_page = (pos % PAGE_SIZE as u64) as usize;
            let n = (PAGE_SIZE - in_page).min(buf.len() - done);
            while pages.len() <= idx {
                pages.push(0);
            }
            if pages[idx] == 0 {
                pages[idx] = self.alloc_page()?;
            }
            let base = pages[idx] * PAGE_SIZE as u64 + in_page as u64;
            let chunk = &buf[done..done + n];
            let res = if use_nt {
                self.device.ntstore(base, chunk)
            } else {
                self.device
                    .write(base, chunk)
                    .and_then(|_| self.device.clwb(base, n))
            };
            res.map_err(|e| FsError::Internal(e.to_string()))?;
            done += n;
        }
        self.device.sfence();
        let end = offset + buf.len() as u64;
        if end > *size {
            *size = end;
        }
        let rec = self.meta_record(node.ino, 1, *size);
        drop(body);
        self.persist_meta(node.ino, &rec)?;
        Ok(buf.len())
    }

    fn append(&self, fd: Fd, buf: &[u8]) -> FsResult<u64> {
        let _span = obs::span(obs::OpKind::Append, self.device.stats());
        let (node, _) = self.file_fd(fd)?;
        let offset = match &*node.body.read() {
            Body::File { size, .. } => *size,
            Body::Dir(_) => return Err(FsError::IsADirectory),
        };
        self.write_at(fd, buf, offset)?;
        Ok(offset)
    }

    fn fsync(&self, _fd: Fd) -> FsResult<()> {
        let _span = obs::span(obs::OpKind::Fsync, self.device.stats());
        self.enter(false);
        // Metadata and data were persisted synchronously above; an fsync
        // still enters the kernel for these designs.
        self.device.sfence();
        Ok(())
    }

    fn truncate(&self, fd: Fd, new_size: u64) -> FsResult<()> {
        let _span = obs::span(obs::OpKind::Truncate, self.device.stats());
        self.enter(false);
        let (node, entry) = self.file_fd(fd)?;
        if !entry.flags.write {
            return Err(FsError::BadAccessMode);
        }
        self.count_lock();
        let mut body = node.body.write();
        let (size, pages) = match &mut *body {
            Body::File { size, pages } => (size, pages),
            Body::Dir(_) => return Err(FsError::IsADirectory),
        };
        let keep = new_size.div_ceil(PAGE_SIZE as u64) as usize;
        if pages.len() > keep {
            let dead: Vec<u64> = pages.drain(keep..).filter(|&p| p != 0).collect();
            self.free_pages.lock().extend(dead);
        }
        // Zero the boundary page's tail so later extension reads zeroes.
        if new_size < *size {
            let in_page = (new_size % PAGE_SIZE as u64) as usize;
            if in_page != 0 {
                if let Some(&p) = pages.get((new_size / PAGE_SIZE as u64) as usize) {
                    if p != 0 {
                        let off = p * PAGE_SIZE as u64 + in_page as u64;
                        let zeroes = vec![0u8; PAGE_SIZE - in_page];
                        self.device
                            .write(off, &zeroes)
                            .and_then(|_| self.device.clwb(off, zeroes.len()))
                            .map_err(|e| FsError::Internal(e.to_string()))?;
                    }
                }
            }
        }
        *size = new_size;
        let rec = self.meta_record(node.ino, 1, new_size);
        drop(body);
        self.persist_meta(node.ino, &rec)?;
        Ok(())
    }

    fn unlink(&self, path: &str) -> FsResult<()> {
        let _span = obs::span(obs::OpKind::Unlink, self.device.stats());
        self.enter(false);
        self.remove_node(path, false)
    }

    fn mkdir(&self, path: &str) -> FsResult<()> {
        let _span = obs::span(obs::OpKind::Mkdir, self.device.stats());
        self.enter(false);
        self.create_node(path, true).map(|_| ())
    }

    fn rmdir(&self, path: &str) -> FsResult<()> {
        let _span = obs::span(obs::OpKind::Rmdir, self.device.stats());
        self.enter(false);
        self.remove_node(path, true)
    }

    fn rename(&self, from: &str, to: &str) -> FsResult<()> {
        let _span = obs::span(obs::OpKind::Rename, self.device.stats());
        self.enter(false);
        let (fp_comps, fname) = vpath::split_parent(from)?;
        let (tp_comps, tname) = vpath::split_parent(to)?;
        vpath::validate_name(tname)?;
        // Cross-directory renames serialize on the VFS rename mutex.
        let _guard = if fp_comps != tp_comps {
            self.count_lock();
            Some(self.rename_mutex.lock())
        } else {
            None
        };
        let fparent = self.resolve(&fp_comps)?;
        let tparent = self.resolve(&tp_comps)?;

        if vpath::components(to)?.starts_with(&vpath::components(from)?) {
            return Err(FsError::WouldCycle);
        }

        if fparent.ino == tparent.ino {
            self.count_lock();
            let mut body = fparent.body.write();
            let map = match &mut *body {
                Body::Dir(m) => m,
                Body::File { .. } => return Err(FsError::NotADirectory),
            };
            let ino = map.remove(fname).ok_or(FsError::NotFound)?;
            if map.contains_key(tname) {
                map.insert(fname.to_string(), ino);
                return Err(FsError::AlreadyExists);
            }
            map.insert(tname.to_string(), ino);
            let prec = self.meta_record(fparent.ino, 2, map.len() as u64);
            drop(body);
            self.persist_meta(fparent.ino, &prec)?;
            return Ok(());
        }

        // Lock both parents in ino order.
        self.count_lock();
        self.count_lock();
        let (first, second) = if fparent.ino < tparent.ino {
            (&fparent, &tparent)
        } else {
            (&tparent, &fparent)
        };
        let mut b1 = first.body.write();
        let mut b2 = second.body.write();
        let (fmap, tmap) = if fparent.ino < tparent.ino {
            (&mut *b1, &mut *b2)
        } else {
            (&mut *b2, &mut *b1)
        };
        let fmap = match fmap {
            Body::Dir(m) => m,
            _ => return Err(FsError::NotADirectory),
        };
        let tmap = match tmap {
            Body::Dir(m) => m,
            _ => return Err(FsError::NotADirectory),
        };
        if tmap.contains_key(tname) {
            return Err(FsError::AlreadyExists);
        }
        let ino = fmap.remove(fname).ok_or(FsError::NotFound)?;
        tmap.insert(tname.to_string(), ino);
        let frec = self.meta_record(fparent.ino, 2, fmap.len() as u64);
        let trec = self.meta_record(tparent.ino, 2, tmap.len() as u64);
        drop(b1);
        drop(b2);
        self.persist_meta(fparent.ino, &frec)?;
        self.persist_meta(tparent.ino, &trec)?;
        Ok(())
    }

    fn readdir(&self, path: &str) -> FsResult<Vec<DirEntry>> {
        let _span = obs::span(obs::OpKind::Readdir, self.device.stats());
        self.enter(false);
        let node = self.resolve_path(path)?;
        self.count_lock();
        let body = node.body.read();
        let map = match &*body {
            Body::Dir(m) => m,
            Body::File { .. } => return Err(FsError::NotADirectory),
        };
        let mut out = Vec::with_capacity(map.len());
        for (name, &ino) in map {
            let ftype = match self.node(ino) {
                Ok(n) => match &*n.body.read() {
                    Body::Dir(_) => FileType::Directory,
                    Body::File { .. } => FileType::Regular,
                },
                Err(_) => FileType::Regular,
            };
            out.push(DirEntry {
                name: name.clone(),
                ino,
                file_type: ftype,
            });
        }
        out.sort_by(|a, b| a.name.cmp(&b.name));
        Ok(out)
    }

    fn stat(&self, path: &str) -> FsResult<Metadata> {
        let _span = obs::span(obs::OpKind::Stat, self.device.stats());
        self.enter(false);
        let node = self.resolve_path(path)?;
        let body = node.body.read();
        Ok(match &*body {
            Body::Dir(m) => Metadata {
                ino: node.ino,
                file_type: FileType::Directory,
                size: m.len() as u64,
                nlink: 2,
            },
            Body::File { size, .. } => Metadata {
                ino: node.ino,
                file_type: FileType::Regular,
                size: *size,
                nlink: 1,
            },
        })
    }

    fn fstat(&self, fd: Fd) -> FsResult<Metadata> {
        let _span = obs::span(obs::OpKind::Stat, self.device.stats());
        self.enter(false);
        let (node, _) = self.file_fd(fd)?;
        let body = node.body.read();
        Ok(match &*body {
            Body::Dir(m) => Metadata {
                ino: node.ino,
                file_type: FileType::Directory,
                size: m.len() as u64,
                nlink: 2,
            },
            Body::File { size, .. } => Metadata {
                ino: node.ino,
                file_type: FileType::Regular,
                size: *size,
                nlink: 1,
            },
        })
    }

    fn open_dir(&self, path: &str) -> FsResult<Fd> {
        let _span = obs::span(obs::OpKind::Open, self.device.stats());
        self.enter(false);
        let comps = vpath::components(path)?;
        let node = self.resolve(&comps)?;
        if !matches!(&*node.body.read(), Body::Dir(_)) {
            return Err(FsError::NotADirectory);
        }
        let normalized = format!("/{}", comps.join("/"));
        let fd = Fd(self.next_fd.fetch_add(1, Ordering::Relaxed));
        self.fds.write().insert(
            fd.0,
            FdEntry {
                ino: node.ino,
                flags: OpenFlags::read(),
                dir_path: Some(normalized),
            },
        );
        Ok(fd)
    }

    fn fd_dir_path(&self, dirfd: Fd) -> FsResult<String> {
        let entry = self
            .fds
            .read()
            .get(&dirfd.0)
            .cloned()
            .ok_or(FsError::BadDescriptor)?;
        entry.dir_path.ok_or(FsError::NotADirectory)
    }

    fn stats(&self) -> FsStats {
        let dev = self.device.stats().snapshot();
        FsStats {
            flushes: dev.clwb,
            fences: dev.sfences,
            syscalls: self.syscalls.load(Ordering::Relaxed),
            verifications: 0,
            pm_bytes_written: dev.bytes_written,
            shared_lock_acqs: self.shared_lock_acqs.load(Ordering::Relaxed),
            ..FsStats::default()
        }
    }

    fn reset_stats(&self) {
        self.device.stats().reset();
        self.syscalls.store(0, Ordering::Relaxed);
        self.shared_lock_acqs.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vfs::FsExt;

    fn all_fs() -> Vec<Arc<KernelFs>> {
        Profile::all()
            .into_iter()
            .map(|p| KernelFs::new(16 << 20, p))
            .collect()
    }

    #[test]
    fn round_trip_all_profiles() {
        for fs in all_fs() {
            fs.write_file("/f", b"baseline").unwrap();
            assert_eq!(fs.read_file("/f").unwrap(), b"baseline");
            fs.mkdir("/d").unwrap();
            fs.write_file("/d/g", b"x").unwrap();
            assert_eq!(fs.readdir("/d").unwrap().len(), 1);
            fs.unlink("/d/g").unwrap();
            fs.rmdir("/d").unwrap();
        }
    }

    #[test]
    fn rename_within_and_across() {
        let fs = KernelFs::new(16 << 20, Profile::nova());
        fs.mkdir("/a").unwrap();
        fs.mkdir("/b").unwrap();
        fs.write_file("/a/f", b"1").unwrap();
        fs.rename("/a/f", "/a/g").unwrap();
        fs.rename("/a/g", "/b/h").unwrap();
        assert_eq!(fs.read_file("/b/h").unwrap(), b"1");
        assert!(fs.stat("/a/f").is_err());
    }

    #[test]
    fn rename_into_descendant_rejected() {
        let fs = KernelFs::new(16 << 20, Profile::ext4());
        fs.mkdir("/a").unwrap();
        fs.mkdir("/a/b").unwrap();
        assert_eq!(fs.rename("/a", "/a/b/c").unwrap_err(), FsError::WouldCycle);
    }

    #[test]
    fn journaling_profiles_flush_more() {
        let redo = KernelFs::new(16 << 20, Profile::ext4());
        let log = KernelFs::new(16 << 20, Profile::nova());
        redo.reset_stats();
        log.reset_stats();
        for i in 0..50 {
            redo.create(&format!("/r{i}")).unwrap();
            log.create(&format!("/l{i}")).unwrap();
        }
        let r = redo.stats();
        let l = log.stats();
        assert!(
            r.fences > l.fences,
            "ext4 (redo journal) must fence more than NOVA: {} vs {}",
            r.fences,
            l.fences
        );
    }

    #[test]
    fn concurrent_shared_directory_creates() {
        let fs = KernelFs::new(32 << 20, Profile::nova());
        fs.mkdir("/shared").unwrap();
        std::thread::scope(|s| {
            for t in 0..4 {
                let fs = fs.clone();
                s.spawn(move || {
                    for i in 0..50 {
                        fs.create(&format!("/shared/t{t}-{i}")).unwrap();
                    }
                });
            }
        });
        assert_eq!(fs.readdir("/shared").unwrap().len(), 200);
    }

    #[test]
    fn truncate_and_sparse() {
        let fs = KernelFs::new(16 << 20, Profile::pmfs());
        let fd = fs.open("/t", OpenFlags::rw().create()).unwrap();
        fs.write_at(fd, &[1u8; 8192], 0).unwrap();
        fs.truncate(fd, 4096).unwrap();
        assert_eq!(fs.stat("/t").unwrap().size, 4096);
        let mut b = [0u8; 10];
        fs.write_at(fd, b"end", 10_000).unwrap();
        let n = fs.read_at(fd, &mut b, 5000).unwrap();
        assert_eq!(n, 10);
        assert_eq!(b, [0u8; 10], "hole reads zeroes");
    }

    #[test]
    fn rmdir_nonempty_fails() {
        let fs = KernelFs::new(16 << 20, Profile::winefs());
        fs.mkdir("/d").unwrap();
        fs.create("/d/f").unwrap();
        assert_eq!(fs.rmdir("/d").unwrap_err(), FsError::NotEmpty);
    }

    #[test]
    fn splitfs_data_ops_skip_syscalls() {
        let fs = KernelFs::new(16 << 20, Profile::splitfs());
        let fd = fs.open("/f", OpenFlags::rw().create()).unwrap();
        fs.reset_stats();
        for i in 0..10 {
            fs.write_at(fd, &[0u8; 64], i * 64).unwrap();
        }
        assert_eq!(fs.stats().syscalls, 0, "userspace data path");
        fs.create("/meta").unwrap();
        assert!(fs.stats().syscalls > 0, "metadata still crosses");
    }

    #[test]
    fn at_defaults_delegate_through_dir_path() {
        let fs = KernelFs::new(16 << 20, Profile::ext4());
        fs.mkdir("/d").unwrap();
        let dfd = fs.open_dir("/d").unwrap();
        let fd = fs.open_at(dfd, "f", OpenFlags::rw().create()).unwrap();
        fs.write_at(fd, b"abc", 0).unwrap();
        assert_eq!(fs.fstat(fd).unwrap().size, 3);
        fs.close(fd).unwrap();
        assert_eq!(fs.stat_at(dfd, "f").unwrap().size, 3);
        fs.mkdir_at(dfd, "sub").unwrap();
        assert_eq!(
            fs.stat("/d/sub").unwrap().file_type,
            FileType::Directory
        );
        fs.unlink_at(dfd, "f").unwrap();
        assert_eq!(fs.stat("/d/f").unwrap_err(), FsError::NotFound);
        // A plain file handle is not a directory anchor.
        let ffd = fs.open("/x", OpenFlags::rw().create()).unwrap();
        assert_eq!(
            fs.stat_at(ffd, "f").unwrap_err(),
            FsError::NotADirectory
        );
        // O_EXCL on an existing name fails.
        assert_eq!(
            fs.open("/x", OpenFlags::rw().create_new()).unwrap_err(),
            FsError::AlreadyExists
        );
    }
}
