//! FxMark's data-operation workloads (§5.2 "In both FxMark data operations
//! and fio, ArckFS outperforms other file systems").
//!
//! Naming follows FxMark: D=data, W/R=write/read, then the block pattern
//! (A=append, O=overwrite, B=read block), then the sharing level.

use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use vfs::{FileSystem, FsError, FsExt, FsResult, OpenFlags};

/// Block size used by every data workload (FxMark uses 4K).
pub const BLOCK: usize = 4096;
/// Pre-sized file length for the overwrite/read workloads.
pub const FILE_SIZE: u64 = 4 << 20;

/// One FxMark data workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(clippy::upper_case_acronyms)]
pub enum DataWorkload {
    /// Append a 4K block to a private file.
    DWAL,
    /// Overwrite a random 4K block of a private file.
    DWOL,
    /// Overwrite a random 4K block of one shared file.
    DWOM,
    /// Read a random 4K block of a private file.
    DRBL,
    /// Read a random 4K block of one shared file.
    DRBM,
    /// Read the *same* 4K block of one shared file.
    DRBH,
}

impl fmt::Display for DataWorkload {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name())
    }
}

impl DataWorkload {
    /// All data workloads in FxMark order.
    pub fn all() -> Vec<DataWorkload> {
        use DataWorkload::*;
        vec![DWAL, DWOL, DWOM, DRBL, DRBM, DRBH]
    }

    /// FxMark's name.
    pub fn name(&self) -> &'static str {
        match self {
            DataWorkload::DWAL => "DWAL",
            DataWorkload::DWOL => "DWOL",
            DataWorkload::DWOM => "DWOM",
            DataWorkload::DRBL => "DRBL",
            DataWorkload::DRBM => "DRBM",
            DataWorkload::DRBH => "DRBH",
        }
    }

    fn is_private(&self) -> bool {
        matches!(
            self,
            DataWorkload::DWAL | DataWorkload::DWOL | DataWorkload::DRBL
        )
    }

    fn path(&self, thread: usize) -> String {
        if self.is_private() {
            format!("/fxdata/t{thread}/file")
        } else {
            "/fxdata/shared/file".to_string()
        }
    }

    /// Create and pre-size the files.
    pub fn setup(&self, fs: &dyn FileSystem, threads: usize) -> FsResult<()> {
        let block = vec![0x6Du8; BLOCK];
        let fill = |path: &str, bytes: u64| -> FsResult<()> {
            let fd = fs.open(path, OpenFlags::rw().create())?;
            for off in (0..bytes).step_by(BLOCK) {
                fs.write_at(fd, &block, off)?;
            }
            fs.close(fd)
        };
        if self.is_private() {
            for t in 0..threads {
                fs.mkdir_all(&format!("/fxdata/t{t}"))?;
                let prefill = if *self == DataWorkload::DWAL {
                    0
                } else {
                    FILE_SIZE
                };
                match fs.create(&self.path(t)) {
                    Ok(fd) => fs.close(fd)?,
                    Err(FsError::AlreadyExists) => {}
                    Err(e) => return Err(e),
                }
                if prefill > 0 {
                    fill(&self.path(t), prefill)?;
                }
            }
        } else {
            fs.mkdir_all("/fxdata/shared")?;
            match fs.create(&self.path(0)) {
                Ok(fd) => fs.close(fd)?,
                Err(FsError::AlreadyExists) => {}
                Err(e) => return Err(e),
            }
            fill(&self.path(0), FILE_SIZE)?;
        }
        Ok(())
    }
}

/// Result of one data-workload run.
#[derive(Debug, Clone)]
pub struct DataRunResult {
    /// Workload.
    pub workload: DataWorkload,
    /// File-system label.
    pub fs_name: String,
    /// Threads.
    pub threads: usize,
    /// Blocks transferred.
    pub ops: u64,
    /// Wall-clock time.
    pub elapsed: Duration,
}

impl DataRunResult {
    /// Throughput in GiB/s.
    pub fn gib_per_sec(&self) -> f64 {
        (self.ops * BLOCK as u64) as f64
            / (1u64 << 30) as f64
            / self.elapsed.as_secs_f64().max(1e-9)
    }
}

/// Run `workload` for `duration` with `threads` workers.
pub fn run_data_workload(
    fs: Arc<dyn FileSystem>,
    workload: DataWorkload,
    threads: usize,
    duration: Duration,
) -> FsResult<DataRunResult> {
    workload.setup(fs.as_ref(), threads)?;
    let stop = Arc::new(AtomicBool::new(false));
    let total = Arc::new(AtomicU64::new(0));
    let barrier = Arc::new(Barrier::new(threads + 1));
    let error: Arc<parking_lot::Mutex<Option<FsError>>> = Arc::new(parking_lot::Mutex::new(None));
    let blocks = FILE_SIZE / BLOCK as u64;

    let start = std::thread::scope(|s| {
        for t in 0..threads {
            let fs = fs.clone();
            let stop = stop.clone();
            let total = total.clone();
            let barrier = barrier.clone();
            let error = error.clone();
            s.spawn(move || {
                barrier.wait();
                let run = || -> FsResult<u64> {
                    let fd = fs.open(&workload.path(t), OpenFlags::rw())?;
                    let mut rng = SmallRng::seed_from_u64(0xda7a + t as u64);
                    let mut buf = vec![0x2Eu8; BLOCK];
                    let mut appended = 0u64;
                    let mut local = 0u64;
                    while !stop.load(Ordering::Relaxed) {
                        match workload {
                            DataWorkload::DWAL => {
                                // Bounded append: wrap by truncating back.
                                if appended >= FILE_SIZE {
                                    fs.truncate(fd, 0)?;
                                    appended = 0;
                                    continue;
                                }
                                fs.append(fd, &buf)?;
                                appended += BLOCK as u64;
                            }
                            DataWorkload::DWOL => {
                                let b = rng.gen_range(0..blocks);
                                fs.write_at(fd, &buf, b * BLOCK as u64)?;
                            }
                            DataWorkload::DWOM => {
                                // FxMark's DWOM: every thread overwrites
                                // its own disjoint region of the one
                                // shared file — the contention under test
                                // is the file-level structures (lock,
                                // mapping), never the data blocks.
                                let stripe = (blocks / threads as u64).max(1);
                                let base = (t as u64 * stripe) % blocks;
                                let b = base + rng.gen_range(0..stripe);
                                fs.write_at(fd, &buf, b * BLOCK as u64)?;
                            }
                            DataWorkload::DRBL | DataWorkload::DRBM => {
                                let b = rng.gen_range(0..blocks);
                                fs.read_at(fd, &mut buf, b * BLOCK as u64)?;
                            }
                            DataWorkload::DRBH => {
                                fs.read_at(fd, &mut buf, 0)?;
                            }
                        }
                        local += 1;
                    }
                    fs.close(fd)?;
                    Ok(local)
                };
                match run() {
                    Ok(n) => {
                        total.fetch_add(n, Ordering::Relaxed);
                    }
                    Err(e) => {
                        *error.lock() = Some(e);
                    }
                }
            });
        }
        barrier.wait();
        let start = Instant::now();
        std::thread::sleep(duration);
        stop.store(true, Ordering::Relaxed);
        start
    });
    let elapsed = start.elapsed();
    if let Some(e) = error.lock().take() {
        return Err(e);
    }
    Ok(DataRunResult {
        workload,
        fs_name: fs.fs_name().to_string(),
        threads,
        ops: total.load(Ordering::Relaxed),
        elapsed,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn six_workloads_with_names() {
        let all = DataWorkload::all();
        assert_eq!(all.len(), 6);
        let mut names: Vec<_> = all.iter().map(|w| w.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 6);
    }

    #[test]
    fn sharing_classification() {
        assert!(DataWorkload::DWAL.is_private());
        assert!(!DataWorkload::DWOM.is_private());
        assert!(!DataWorkload::DRBH.is_private());
    }

    #[test]
    fn gib_math() {
        let r = DataRunResult {
            workload: DataWorkload::DRBL,
            fs_name: "x".into(),
            threads: 1,
            ops: 262_144,
            elapsed: Duration::from_secs(1),
        };
        assert!((r.gib_per_sec() - 1.0).abs() < 1e-9);
    }
}
