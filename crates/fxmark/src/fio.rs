//! fio-style data workloads (§5.2 data scalability, §5.1 data performance).
//!
//! Each worker thread owns (or shares, per [`Sharing`]) a pre-sized file
//! and performs fixed-size sequential or random reads/writes, mirroring the
//! fio job files the TRIO artifact ships.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use vfs::{FileSystem, FsError, FsExt, FsResult, OpenFlags};

/// Access pattern.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Pattern {
    /// Sequential, wrapping at end of file.
    Sequential,
    /// Uniformly random block offsets.
    Random,
}

/// Read or write.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// `pread`-style reads.
    Read,
    /// `pwrite`-style overwrites (no extension).
    Write,
}

/// Whether threads share one file or own private files.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Sharing {
    /// One private file per thread.
    Private,
    /// All threads on one shared file.
    Shared,
}

/// One fio-style job.
#[derive(Debug, Clone, Copy)]
pub struct FioJob {
    /// Access pattern.
    pub pattern: Pattern,
    /// Read or write.
    pub direction: Direction,
    /// Private or shared file.
    pub sharing: Sharing,
    /// I/O unit in bytes (the paper uses 4K).
    pub block_size: usize,
    /// File size in bytes.
    pub file_size: u64,
}

impl FioJob {
    /// The paper's default: 4K blocks.
    pub fn new(pattern: Pattern, direction: Direction, sharing: Sharing, file_size: u64) -> Self {
        FioJob {
            pattern,
            direction,
            sharing,
            block_size: 4096,
            file_size,
        }
    }

    /// A short label like `seq-write-private`.
    pub fn label(&self) -> String {
        format!(
            "{}-{}-{}",
            match self.pattern {
                Pattern::Sequential => "seq",
                Pattern::Random => "rand",
            },
            match self.direction {
                Direction::Read => "read",
                Direction::Write => "write",
            },
            match self.sharing {
                Sharing::Private => "private",
                Sharing::Shared => "shared",
            }
        )
    }

    fn path(&self, thread: usize) -> String {
        match self.sharing {
            Sharing::Private => format!("/fio/t{thread}/data"),
            Sharing::Shared => "/fio/shared/data".to_string(),
        }
    }

    /// Create and pre-size the job's files.
    pub fn setup(&self, fs: &dyn FileSystem, threads: usize) -> FsResult<()> {
        let blocks = self.file_size / self.block_size as u64;
        assert!(blocks > 0, "file must hold at least one block");
        let data = vec![0x5Au8; self.block_size];
        let write_all = |path: &str| -> FsResult<()> {
            let fd = fs.open(path, OpenFlags::rw().create())?;
            for b in 0..blocks {
                fs.write_at(fd, &data, b * self.block_size as u64)?;
            }
            fs.close(fd)
        };
        match self.sharing {
            Sharing::Private => {
                for t in 0..threads {
                    fs.mkdir_all(&format!("/fio/t{t}"))?;
                    write_all(&self.path(t))?;
                }
            }
            Sharing::Shared => {
                fs.mkdir_all("/fio/shared")?;
                write_all(&self.path(0))?;
            }
        }
        Ok(())
    }
}

/// Result of one fio run.
#[derive(Debug, Clone)]
pub struct FioResult {
    /// Job description.
    pub label: String,
    /// File-system label.
    pub fs_name: String,
    /// Threads.
    pub threads: usize,
    /// Blocks transferred.
    pub ops: u64,
    /// Bytes transferred.
    pub bytes: u64,
    /// Wall-clock time.
    pub elapsed: Duration,
}

impl FioResult {
    /// Throughput in GiB/s (the paper's Table 4 unit).
    pub fn gib_per_sec(&self) -> f64 {
        self.bytes as f64 / (1u64 << 30) as f64 / self.elapsed.as_secs_f64().max(1e-9)
    }
}

/// Run `job` on `fs` with `threads` workers for `duration`.
pub fn run_fio(
    fs: Arc<dyn FileSystem>,
    job: FioJob,
    threads: usize,
    duration: Duration,
) -> FsResult<FioResult> {
    job.setup(fs.as_ref(), threads)?;
    let stop = Arc::new(AtomicBool::new(false));
    let total = Arc::new(AtomicU64::new(0));
    let barrier = Arc::new(Barrier::new(threads + 1));
    let error: Arc<parking_lot::Mutex<Option<FsError>>> = Arc::new(parking_lot::Mutex::new(None));
    let blocks = job.file_size / job.block_size as u64;

    let start = std::thread::scope(|s| {
        for t in 0..threads {
            let fs = fs.clone();
            let stop = stop.clone();
            let total = total.clone();
            let barrier = barrier.clone();
            let error = error.clone();
            s.spawn(move || {
                // Wait before any fallible work so the barrier contract
                // holds even when open() fails.
                barrier.wait();
                let run = || -> FsResult<u64> {
                    let path = job.path(t);
                    let fd = fs.open(
                        &path,
                        if job.direction == Direction::Read {
                            OpenFlags::read()
                        } else {
                            OpenFlags::rw()
                        },
                    )?;
                    let mut rng = SmallRng::seed_from_u64(0xf10 + t as u64);
                    let mut buf = vec![0x3Cu8; job.block_size];
                    let mut next = 0u64;
                    let mut local = 0u64;
                    while !stop.load(Ordering::Relaxed) {
                        let block = match job.pattern {
                            Pattern::Sequential => {
                                let b = next % blocks;
                                next += 1;
                                b
                            }
                            Pattern::Random => rng.gen_range(0..blocks),
                        };
                        let off = block * job.block_size as u64;
                        match job.direction {
                            Direction::Read => {
                                fs.read_at(fd, &mut buf, off)?;
                            }
                            Direction::Write => {
                                fs.write_at(fd, &buf, off)?;
                            }
                        }
                        local += 1;
                    }
                    fs.close(fd)?;
                    Ok(local)
                };
                match run() {
                    Ok(n) => {
                        total.fetch_add(n, Ordering::Relaxed);
                    }
                    Err(e) => {
                        *error.lock() = Some(e);
                    }
                }
            });
        }
        barrier.wait();
        let start = Instant::now();
        std::thread::sleep(duration);
        stop.store(true, Ordering::Relaxed);
        start
    });
    let elapsed = start.elapsed();
    if let Some(e) = error.lock().take() {
        return Err(e);
    }
    let ops = total.load(Ordering::Relaxed);
    Ok(FioResult {
        label: job.label(),
        fs_name: fs.fs_name().to_string(),
        threads,
        ops,
        bytes: ops * job.block_size as u64,
        elapsed,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels() {
        let j = FioJob::new(Pattern::Random, Direction::Write, Sharing::Shared, 1 << 20);
        assert_eq!(j.label(), "rand-write-shared");
    }

    #[test]
    fn gib_math() {
        let r = FioResult {
            label: "x".into(),
            fs_name: "y".into(),
            threads: 1,
            ops: 262_144,
            bytes: 1 << 30,
            elapsed: Duration::from_secs(1),
        };
        assert!((r.gib_per_sec() - 1.0).abs() < 1e-9);
    }
}
