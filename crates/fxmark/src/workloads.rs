//! The FxMark workload definitions (paper Table 3).

use std::fmt;

use vfs::{FileSystem, FsError, FsExt, FsResult};

/// Create a file if it does not exist (setup is idempotent so workloads
/// can share one file system instance).
fn ensure_file(fs: &dyn FileSystem, path: &str) -> FsResult<()> {
    match fs.create(path) {
        Ok(fd) => fs.close(fd),
        Err(FsError::AlreadyExists) => Ok(()),
        Err(e) => Err(e),
    }
}

/// One FxMark workload. Naming: D=data/M=metadata, R=read/W=write, then the
/// object (P=path, D=directory, C=create, U=unlink, R=rename, T=truncate),
/// then the sharing level (L=low/private, M=medium/shared, H=high/same
/// object).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(clippy::upper_case_acronyms)]
pub enum Workload {
    /// Reduces the size of a private file by 4K.
    DWTL,
    /// Open a private file in five-depth dirs.
    MRPL,
    /// Open a random file in five-depth dirs.
    MRPM,
    /// Open the same file in five-depth dirs.
    MRPH,
    /// Enumerate files of a private directory.
    MRDL,
    /// Enumerate files of a shared directory.
    MRDM,
    /// Create an empty file in a private directory.
    MWCL,
    /// Create an empty file in a shared directory.
    MWCM,
    /// Unlink an empty file in a private directory.
    MWUL,
    /// Unlink an empty file in a shared directory.
    MWUM,
    /// Rename a private file in a private directory.
    MWRL,
    /// Move a private file to a shared directory.
    MWRM,
    /// MRPL through the handle-relative API: open a private file via a
    /// directory handle (`open_at`), skipping the five-component walk.
    /// Not part of the paper's Figure 3/4 set ([`Workload::all`]).
    MRPLAt,
}

impl fmt::Display for Workload {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name())
    }
}

impl Workload {
    /// All metadata workloads plus DWTL, in the paper's Figure 4 order.
    pub fn all() -> Vec<Workload> {
        use Workload::*;
        vec![
            DWTL, MRPL, MRPM, MRPH, MRDL, MRDM, MWCL, MWCM, MWUL, MWUM, MWRL, MWRM,
        ]
    }

    /// [`Workload::all`] plus the non-paper extension workloads (currently
    /// just [`Workload::MRPLAt`]); keeps the figures' set stable.
    pub fn extended() -> Vec<Workload> {
        let mut v = Workload::all();
        v.push(Workload::MRPLAt);
        v
    }

    /// The workload's FxMark name.
    pub fn name(&self) -> &'static str {
        match self {
            Workload::DWTL => "DWTL",
            Workload::MRPL => "MRPL",
            Workload::MRPM => "MRPM",
            Workload::MRPH => "MRPH",
            Workload::MRDL => "MRDL",
            Workload::MRDM => "MRDM",
            Workload::MWCL => "MWCL",
            Workload::MWCM => "MWCM",
            Workload::MWUL => "MWUL",
            Workload::MWUM => "MWUM",
            Workload::MWRL => "MWRL",
            Workload::MWRM => "MWRM",
            Workload::MRPLAt => "MRPLat",
        }
    }

    /// Table 3's description text.
    pub fn description(&self) -> &'static str {
        match self {
            Workload::DWTL => "Reduces the size of a private file by 4K.",
            Workload::MRPL => "Open a private file in five-depth dirs.",
            Workload::MRPM => "Open a random file in five-depth dirs.",
            Workload::MRPH => "Open the same file in five-depth dirs.",
            Workload::MRDL => "Enumerate files of a private directory.",
            Workload::MRDM => "Enumerate files of a shared directory.",
            Workload::MWCL => "Create an empty file in a private dir.",
            Workload::MWCM => "Create an empty file in a shared dir.",
            Workload::MWUL => "Unlink an empty file in a private dir.",
            Workload::MWUM => "Unlink an empty file in a shared dir.",
            Workload::MWRL => "Rename a private file in a private dir.",
            Workload::MWRM => "Move a private file to a shared dir.",
            Workload::MRPLAt => "Open a private file via a dir handle (open_at).",
        }
    }

    /// Parse a workload name.
    pub fn from_name(s: &str) -> Option<Workload> {
        Workload::extended()
            .into_iter()
            .find(|w| w.name().eq_ignore_ascii_case(s))
    }

    /// Number of files pre-created per directory for the read workloads.
    pub const FILES_PER_DIR: usize = 32;

    /// DWTL's initial private-file size (the paper used 256 MB; scaled to
    /// the emulated device here).
    pub const DWTL_FILE_SIZE: u64 = 4 << 20;

    /// The five-depth directory prefix for the path-resolution workloads.
    fn deep_dir(private_to: Option<usize>) -> String {
        match private_to {
            Some(t) => format!("/fx/p{t}/d1/d2/d3/d4"),
            None => "/fx/shared/d1/d2/d3/d4".to_string(),
        }
    }

    /// Path helpers used by both setup and the per-op loops.
    pub(crate) fn private_deep_dir(thread: usize) -> String {
        Self::deep_dir(Some(thread))
    }

    pub(crate) fn shared_deep_dir() -> String {
        Self::deep_dir(None)
    }

    pub(crate) fn private_dir(thread: usize) -> String {
        format!("/fx/flat{thread}")
    }

    pub(crate) fn shared_dir() -> String {
        "/fx/sharedflat".to_string()
    }

    /// Prepare the directory trees and file sets the workload expects, for
    /// `threads` worker threads.
    pub fn setup(&self, fs: &dyn FileSystem, threads: usize) -> FsResult<()> {
        match self {
            Workload::DWTL => {
                for t in 0..threads {
                    fs.mkdir_all(&Self::private_dir(t))?;
                    let path = format!("{}/dwtl", Self::private_dir(t));
                    let fd = fs.open(&path, vfs::OpenFlags::rw().create())?;
                    fs.truncate(fd, Self::DWTL_FILE_SIZE)?;
                    fs.close(fd)?;
                }
            }
            Workload::MRPL | Workload::MRPLAt => {
                for t in 0..threads {
                    let dir = Self::private_deep_dir(t);
                    fs.mkdir_all(&dir)?;
                    ensure_file(fs, &format!("{dir}/target"))?;
                }
            }
            Workload::MRPM | Workload::MRPH => {
                let dir = Self::shared_deep_dir();
                fs.mkdir_all(&dir)?;
                for i in 0..Self::FILES_PER_DIR {
                    ensure_file(fs, &format!("{dir}/f{i}"))?;
                }
            }
            Workload::MRDL => {
                for t in 0..threads {
                    let dir = Self::private_dir(t);
                    fs.mkdir_all(&dir)?;
                    for i in 0..Self::FILES_PER_DIR {
                        ensure_file(fs, &format!("{dir}/f{i}"))?;
                    }
                }
            }
            Workload::MRDM => {
                let dir = Self::shared_dir();
                fs.mkdir_all(&dir)?;
                for i in 0..Self::FILES_PER_DIR {
                    ensure_file(fs, &format!("{dir}/f{i}"))?;
                }
            }
            Workload::MWCL | Workload::MWUL | Workload::MWRL => {
                for t in 0..threads {
                    fs.mkdir_all(&Self::private_dir(t))?;
                }
            }
            Workload::MWCM | Workload::MWUM => {
                fs.mkdir_all(&Self::shared_dir())?;
            }
            Workload::MWRM => {
                fs.mkdir_all(&Self::shared_dir())?;
                for t in 0..threads {
                    fs.mkdir_all(&Self::private_dir(t))?;
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_round_trip() {
        for w in Workload::extended() {
            assert_eq!(Workload::from_name(w.name()), Some(w));
            assert_eq!(Workload::from_name(&w.name().to_lowercase()), Some(w));
        }
        assert_eq!(Workload::from_name("nope"), None);
    }

    #[test]
    fn twelve_workloads() {
        assert_eq!(Workload::all().len(), 12);
        // Extensions ride outside the paper set.
        assert_eq!(Workload::extended().len(), 13);
        assert!(!Workload::all().contains(&Workload::MRPLAt));
    }

    #[test]
    fn descriptions_match_table3() {
        assert_eq!(
            Workload::DWTL.description(),
            "Reduces the size of a private file by 4K."
        );
        assert_eq!(
            Workload::MWRM.description(),
            "Move a private file to a shared dir."
        );
    }

    #[test]
    fn deep_dirs_have_five_levels() {
        let p = Workload::private_deep_dir(0);
        assert_eq!(p.matches('/').count(), 6); // /fx/p0/d1/d2/d3/d4
    }
}
