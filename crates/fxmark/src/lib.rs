#![warn(missing_docs)]

//! FxMark — the file-system scalability microbenchmark suite (Min et al.,
//! ATC 2016), as adapted by the TRIO artifact and this paper.
//!
//! Table 3 of the paper summarizes the metadata workloads reproduced here
//! (see [`Workload`]). Following the paper's §5.2, this port:
//!
//! * uses **threads** (not processes) for parallel execution, introducing
//!   synchronization within one LibFS process — which is exactly what
//!   exposes the §4.3–§4.5 bugs;
//! * omits the write in MWCM to focus on inode creation;
//! * makes the DWTL file size configurable (the paper used 256 MB instead
//!   of 3 GB "due to insufficient PM capacity"; the default here is
//!   smaller still, scaled to the emulated device).
//!
//! The [`fio`] module provides the fio-style sequential/random data
//! workloads used by §5.2's data-scalability experiment.

pub mod data;
pub mod fio;
pub mod harness;
pub mod workloads;

pub use data::{run_data_workload, DataWorkload};
pub use harness::{run_workload, RunMode, RunResult};
pub use workloads::Workload;
