//! The FxMark thread harness.
//!
//! Workers synchronize on a start barrier, run their per-operation loop
//! until the stop flag (duration mode) or a fixed per-thread operation
//! count, and report summed operations. Throughput is `ops / elapsed`.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use vfs::{FileSystem, FsError, FsResult, OpenFlags};

use crate::workloads::Workload;

/// How long a run lasts.
#[derive(Debug, Clone, Copy)]
pub enum RunMode {
    /// Run for a wall-clock duration.
    Duration(Duration),
    /// Run a fixed number of operations per thread.
    OpsPerThread(u64),
}

/// Result of one workload run.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// Workload executed.
    pub workload: Workload,
    /// File-system label.
    pub fs_name: String,
    /// Worker threads.
    pub threads: usize,
    /// Total completed operations across threads.
    pub ops: u64,
    /// Wall-clock time.
    pub elapsed: Duration,
}

impl RunResult {
    /// Throughput in operations per second.
    pub fn ops_per_sec(&self) -> f64 {
        self.ops as f64 / self.elapsed.as_secs_f64().max(1e-9)
    }

    /// Throughput in M ops/s (the paper's Figure 3/4 unit).
    pub fn mops_per_sec(&self) -> f64 {
        self.ops_per_sec() / 1e6
    }
}

/// Batch size for the unlink/rename refill phases (uncounted work that
/// replenishes the files the measured operation consumes).
const REFILL: u64 = 64;

struct WorkerCtx<'a> {
    fs: &'a dyn FileSystem,
    workload: Workload,
    thread: usize,
    rng: SmallRng,
    /// Monotone per-thread counter for unique names.
    counter: u64,
    /// Pending pre-created files for MWUL/MWUM/MWRM.
    pending: Vec<String>,
    /// DWTL current size.
    dwtl_size: u64,
    /// MRPLat's directory handle, opened lazily on the first operation.
    /// `None` after `dir_fd_tried` means the FS lacks `open_dir` and the
    /// workload degrades to full-path opens (equivalent to MRPL).
    dir_fd: Option<vfs::Fd>,
    dir_fd_tried: bool,
}

impl<'a> WorkerCtx<'a> {
    fn new(fs: &'a dyn FileSystem, workload: Workload, thread: usize) -> Self {
        WorkerCtx {
            fs,
            workload,
            thread,
            rng: SmallRng::seed_from_u64(0x5eed_0000 + thread as u64),
            counter: 0,
            pending: Vec::new(),
            dwtl_size: Workload::DWTL_FILE_SIZE,
            dir_fd: None,
            dir_fd_tried: false,
        }
    }

    fn unique(&mut self) -> u64 {
        self.counter += 1;
        self.counter
    }

    /// One measured operation. Returns Ok(ops_counted).
    fn op(&mut self) -> FsResult<u64> {
        let t = self.thread;
        match self.workload {
            Workload::DWTL => {
                let path = format!("{}/dwtl", Workload::private_dir(t));
                let fd = self.fs.open(&path, OpenFlags::rw())?;
                if self.dwtl_size < 4096 {
                    // Re-extend (uncounted) once fully consumed.
                    self.fs.truncate(fd, Workload::DWTL_FILE_SIZE)?;
                    self.dwtl_size = Workload::DWTL_FILE_SIZE;
                    self.fs.close(fd)?;
                    return Ok(0);
                }
                self.dwtl_size -= 4096;
                self.fs.truncate(fd, self.dwtl_size)?;
                self.fs.close(fd)?;
                Ok(1)
            }
            Workload::MRPL => {
                let path = format!("{}/target", Workload::private_deep_dir(t));
                let fd = self.fs.open(&path, OpenFlags::read())?;
                self.fs.close(fd)?;
                Ok(1)
            }
            Workload::MRPLAt => {
                if !self.dir_fd_tried {
                    self.dir_fd_tried = true;
                    self.dir_fd = match self.fs.open_dir(&Workload::private_deep_dir(t)) {
                        Ok(fd) => Some(fd),
                        Err(FsError::Unsupported(_)) => None,
                        Err(e) => return Err(e),
                    };
                }
                let fd = match self.dir_fd {
                    Some(d) => self.fs.open_at(d, "target", OpenFlags::read())?,
                    None => {
                        let path = format!("{}/target", Workload::private_deep_dir(t));
                        self.fs.open(&path, OpenFlags::read())?
                    }
                };
                self.fs.close(fd)?;
                Ok(1)
            }
            Workload::MRPM => {
                let i = self.rng.gen_range(0..Workload::FILES_PER_DIR);
                let path = format!("{}/f{i}", Workload::shared_deep_dir());
                let fd = self.fs.open(&path, OpenFlags::read())?;
                self.fs.close(fd)?;
                Ok(1)
            }
            Workload::MRPH => {
                let path = format!("{}/f0", Workload::shared_deep_dir());
                let fd = self.fs.open(&path, OpenFlags::read())?;
                self.fs.close(fd)?;
                Ok(1)
            }
            Workload::MRDL => {
                let entries = self.fs.readdir(&Workload::private_dir(t))?;
                debug_assert!(entries.len() >= Workload::FILES_PER_DIR);
                Ok(1)
            }
            Workload::MRDM => {
                let _ = self.fs.readdir(&Workload::shared_dir())?;
                Ok(1)
            }
            Workload::MWCL => {
                let n = self.unique();
                let path = format!("{}/c{t}-{n}", Workload::private_dir(t));
                let fd = self.fs.create(&path)?;
                self.fs.close(fd)?;
                Ok(1)
            }
            Workload::MWCM => {
                let n = self.unique();
                let path = format!("{}/c{t}-{n}", Workload::shared_dir());
                let fd = self.fs.create(&path)?;
                self.fs.close(fd)?;
                Ok(1)
            }
            Workload::MWUL | Workload::MWUM => {
                if self.pending.is_empty() {
                    // Refill (uncounted): create a batch to unlink.
                    let dir = if self.workload == Workload::MWUL {
                        Workload::private_dir(t)
                    } else {
                        Workload::shared_dir()
                    };
                    for _ in 0..REFILL {
                        let n = self.unique();
                        let path = format!("{dir}/u{t}-{n}");
                        let fd = self.fs.create(&path)?;
                        self.fs.close(fd)?;
                        self.pending.push(path);
                    }
                    return Ok(0);
                }
                let path = self.pending.pop().expect("non-empty");
                self.fs.unlink(&path)?;
                Ok(1)
            }
            Workload::MWRL => {
                // Toggle a private file between two names.
                let dir = Workload::private_dir(t);
                let a = format!("{dir}/r{t}-a");
                let b = format!("{dir}/r{t}-b");
                if self.counter == 0 {
                    let fd = self.fs.create(&a)?;
                    self.fs.close(fd)?;
                    self.counter = 1;
                    return Ok(0);
                }
                let (from, to) = if self.counter % 2 == 1 {
                    (&a, &b)
                } else {
                    (&b, &a)
                };
                self.fs.rename(from, to)?;
                self.counter += 1;
                Ok(1)
            }
            Workload::MWRM => {
                if self.pending.is_empty() {
                    // Refill (uncounted): create private files to move.
                    let dir = Workload::private_dir(t);
                    for _ in 0..REFILL {
                        let n = self.unique();
                        let path = format!("{dir}/m{t}-{n}");
                        let fd = self.fs.create(&path)?;
                        self.fs.close(fd)?;
                        self.pending.push(path);
                    }
                    return Ok(0);
                }
                let from = self.pending.pop().expect("non-empty");
                let name = from.rsplit('/').next().expect("has name");
                let to = format!("{}/{name}", Workload::shared_dir());
                self.fs.rename(&from, &to)?;
                Ok(1)
            }
        }
    }
}

/// Set up and run `workload` on `fs` with `threads` workers.
///
/// In [`RunMode::Duration`] the workers run until the stop flag; in
/// [`RunMode::OpsPerThread`] this delegates to [`run_workload_timed`].
pub fn run_workload(
    fs: Arc<dyn FileSystem>,
    workload: Workload,
    threads: usize,
    mode: RunMode,
) -> FsResult<RunResult> {
    let duration = match mode {
        RunMode::Duration(d) => d,
        RunMode::OpsPerThread(n) => return run_workload_timed(fs, workload, threads, n),
    };
    workload.setup(fs.as_ref(), threads)?;

    let stop = Arc::new(AtomicBool::new(false));
    let total = Arc::new(AtomicU64::new(0));
    let barrier = Arc::new(Barrier::new(threads + 1));
    let error: Arc<parking_lot::Mutex<Option<FsError>>> = Arc::new(parking_lot::Mutex::new(None));

    let start = std::thread::scope(|s| {
        for t in 0..threads {
            let fs = fs.clone();
            let stop = stop.clone();
            let total = total.clone();
            let barrier = barrier.clone();
            let error = error.clone();
            s.spawn(move || {
                let mut ctx = WorkerCtx::new(fs.as_ref(), workload, t);
                barrier.wait();
                let mut local = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    match ctx.op() {
                        Ok(n) => local += n,
                        Err(e) => {
                            *error.lock() = Some(e);
                            break;
                        }
                    }
                }
                total.fetch_add(local, Ordering::Relaxed);
            });
        }
        barrier.wait();
        let start = Instant::now();
        std::thread::sleep(duration);
        stop.store(true, Ordering::Relaxed);
        start
        // Scope joins all workers here.
    });
    let elapsed = start.elapsed();
    if let Some(e) = error.lock().take() {
        return Err(e);
    }
    Ok(RunResult {
        workload,
        fs_name: fs.fs_name().to_string(),
        threads,
        ops: total.load(Ordering::Relaxed),
        elapsed,
    })
}

/// Run with precise wall-clock measurement (used for fixed-op runs where
/// `run_workload`'s duration bookkeeping does not apply).
pub fn run_workload_timed(
    fs: Arc<dyn FileSystem>,
    workload: Workload,
    threads: usize,
    ops_per_thread: u64,
) -> FsResult<RunResult> {
    workload.setup(fs.as_ref(), threads)?;
    let total = Arc::new(AtomicU64::new(0));
    let barrier = Arc::new(Barrier::new(threads + 1));
    let error: Arc<parking_lot::Mutex<Option<FsError>>> = Arc::new(parking_lot::Mutex::new(None));

    let start_cell = Arc::new(parking_lot::Mutex::new(None::<Instant>));
    let elapsed = std::thread::scope(|s| {
        for t in 0..threads {
            let fs = fs.clone();
            let total = total.clone();
            let barrier = barrier.clone();
            let error = error.clone();
            s.spawn(move || {
                let mut ctx = WorkerCtx::new(fs.as_ref(), workload, t);
                barrier.wait();
                let mut local = 0u64;
                while local < ops_per_thread {
                    match ctx.op() {
                        Ok(n) => local += n,
                        Err(e) => {
                            *error.lock() = Some(e);
                            break;
                        }
                    }
                }
                total.fetch_add(local, Ordering::Relaxed);
            });
        }
        barrier.wait();
        *start_cell.lock() = Some(Instant::now());
        // Scope joins all workers here.
        start_cell
    });
    let start = elapsed.lock().take().expect("start recorded");
    let elapsed = start.elapsed();
    if let Some(e) = error.lock().take() {
        return Err(e);
    }
    Ok(RunResult {
        workload,
        fs_name: fs.fs_name().to_string(),
        threads,
        ops: total.load(Ordering::Relaxed),
        elapsed,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use kernelfs_for_tests::mk_fs;

    /// A tiny in-crate stand-in file system is overkill; use the arckfs
    /// crate's public constructor through dynamic dispatch in integration
    /// tests instead. Here we test the harness with a minimal in-memory FS.
    mod kernelfs_for_tests {
        use super::*;
        use parking_lot::RwLock;
        use std::collections::HashMap;

        /// Minimal in-memory FS implementing just enough for the harness.
        #[derive(Default)]
        pub struct MemFs {
            nodes: RwLock<HashMap<String, (bool, u64)>>, // path -> (is_dir, size)
            fds: RwLock<HashMap<u64, String>>,
            next: std::sync::atomic::AtomicU64,
        }

        pub fn mk_fs() -> Arc<dyn FileSystem> {
            let fs = MemFs::default();
            fs.nodes.write().insert("/".into(), (true, 0));
            Arc::new(fs)
        }

        impl FileSystem for MemFs {
            fn fs_name(&self) -> &str {
                "memfs"
            }
            fn create(&self, path: &str) -> FsResult<vfs::Fd> {
                let mut n = self.nodes.write();
                if n.contains_key(path) {
                    return Err(FsError::AlreadyExists);
                }
                n.insert(path.to_string(), (false, 0));
                let id = self.next.fetch_add(1, Ordering::Relaxed);
                self.fds.write().insert(id, path.to_string());
                Ok(vfs::Fd(id))
            }
            fn open(&self, path: &str, flags: OpenFlags) -> FsResult<vfs::Fd> {
                if !self.nodes.read().contains_key(path) {
                    if flags.create {
                        return self.create(path);
                    }
                    return Err(FsError::NotFound);
                }
                let id = self.next.fetch_add(1, Ordering::Relaxed);
                self.fds.write().insert(id, path.to_string());
                Ok(vfs::Fd(id))
            }
            fn close(&self, fd: vfs::Fd) -> FsResult<()> {
                self.fds
                    .write()
                    .remove(&fd.0)
                    .map(|_| ())
                    .ok_or(FsError::BadDescriptor)
            }
            fn read_at(&self, _fd: vfs::Fd, _buf: &mut [u8], _off: u64) -> FsResult<usize> {
                Ok(0)
            }
            fn write_at(&self, _fd: vfs::Fd, buf: &[u8], _off: u64) -> FsResult<usize> {
                Ok(buf.len())
            }
            fn append(&self, _fd: vfs::Fd, buf: &[u8]) -> FsResult<u64> {
                Ok(buf.len() as u64)
            }
            fn fsync(&self, _fd: vfs::Fd) -> FsResult<()> {
                Ok(())
            }
            fn truncate(&self, fd: vfs::Fd, size: u64) -> FsResult<()> {
                let path = self
                    .fds
                    .read()
                    .get(&fd.0)
                    .cloned()
                    .ok_or(FsError::BadDescriptor)?;
                self.nodes.write().get_mut(&path).expect("open file").1 = size;
                Ok(())
            }
            fn unlink(&self, path: &str) -> FsResult<()> {
                self.nodes
                    .write()
                    .remove(path)
                    .map(|_| ())
                    .ok_or(FsError::NotFound)
            }
            fn mkdir(&self, path: &str) -> FsResult<()> {
                let mut n = self.nodes.write();
                if n.contains_key(path) {
                    return Err(FsError::AlreadyExists);
                }
                n.insert(path.to_string(), (true, 0));
                Ok(())
            }
            fn rmdir(&self, path: &str) -> FsResult<()> {
                self.nodes
                    .write()
                    .remove(path)
                    .map(|_| ())
                    .ok_or(FsError::NotFound)
            }
            fn rename(&self, from: &str, to: &str) -> FsResult<()> {
                let mut n = self.nodes.write();
                let v = n.remove(from).ok_or(FsError::NotFound)?;
                n.insert(to.to_string(), v);
                Ok(())
            }
            fn readdir(&self, path: &str) -> FsResult<Vec<vfs::DirEntry>> {
                let prefix = format!("{}/", path.trim_end_matches('/'));
                Ok(self
                    .nodes
                    .read()
                    .iter()
                    .filter(|(k, _)| k.starts_with(&prefix) && !k[prefix.len()..].contains('/'))
                    .map(|(k, (d, _))| vfs::DirEntry {
                        name: k[prefix.len()..].to_string(),
                        ino: 0,
                        file_type: if *d {
                            vfs::FileType::Directory
                        } else {
                            vfs::FileType::Regular
                        },
                    })
                    .collect())
            }
            fn stat(&self, path: &str) -> FsResult<vfs::Metadata> {
                let n = self.nodes.read();
                let (d, size) = n.get(path).ok_or(FsError::NotFound)?;
                Ok(vfs::Metadata {
                    ino: 0,
                    file_type: if *d {
                        vfs::FileType::Directory
                    } else {
                        vfs::FileType::Regular
                    },
                    size: *size,
                    nlink: 1,
                })
            }
        }
    }

    #[test]
    fn every_workload_runs_single_thread() {
        for w in Workload::extended() {
            let fs = mk_fs();
            let r = run_workload_timed(fs, w, 1, 50).unwrap_or_else(|e| {
                panic!("workload {w} failed: {e}");
            });
            assert_eq!(r.ops, 50, "workload {w}");
            assert!(r.ops_per_sec() > 0.0);
        }
    }

    #[test]
    fn multithreaded_counts_sum() {
        let fs = mk_fs();
        let r = run_workload_timed(fs, Workload::MWCL, 4, 25).unwrap();
        assert_eq!(r.ops, 100);
        assert_eq!(r.threads, 4);
    }

    #[test]
    fn duration_mode_stops() {
        let fs = mk_fs();
        let r = run_workload(
            fs,
            Workload::MWCL,
            2,
            RunMode::Duration(Duration::from_millis(50)),
        )
        .unwrap();
        assert!(r.ops > 0);
        assert!(r.elapsed >= Duration::from_millis(50));
    }

    #[test]
    fn mops_math() {
        let r = RunResult {
            workload: Workload::MWCL,
            fs_name: "x".into(),
            threads: 1,
            ops: 2_000_000,
            elapsed: Duration::from_secs(2),
        };
        assert!((r.mops_per_sec() - 1.0).abs() < 1e-9);
    }
}
