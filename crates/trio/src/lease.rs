//! The global cross-directory rename lease (§4.6 patch, case 1).
//!
//! Concurrent cross-directory renames of *directories* can create cycles
//! (e.g. `rename(/c, /a/b/c)` racing `rename(/a, /c/d/a)`). Linux VFS
//! serializes these with `s_vfs_rename_mutex`; ArckFS+ introduces the
//! equivalent as a kernel-owned global lock. Because a LibFS is untrusted,
//! the lock is a **lease with a timeout**: a malicious or crashed holder
//! loses it after the timeout and a waiting LibFS may steal it.

use std::time::{Duration, Instant};

use parking_lot::Mutex;

/// Identifier of a LibFS holding or requesting the lease. Mirrors
/// [`crate::controller::LibFsId`] but kept as a plain `u64` so this module
/// has no dependency on the controller.
type HolderId = u64;

#[derive(Debug)]
struct LeaseState {
    holder: Option<HolderId>,
    expires: Instant,
    /// Fencing token: bumped on every grant, so a stale holder's release
    /// after a steal is ignored.
    token: u64,
}

/// The global rename lease.
#[derive(Debug)]
pub struct RenameLease {
    state: Mutex<LeaseState>,
    timeout: Duration,
}

/// Outcome of a lease acquisition attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LeaseGrant {
    /// Lease granted with this fencing token.
    Granted {
        /// Token to present on release.
        token: u64,
    },
    /// Another LibFS holds an unexpired lease.
    Busy {
        /// How long until the current lease expires.
        remaining: Duration,
    },
}

impl RenameLease {
    /// A lease with the given holder timeout.
    pub fn new(timeout: Duration) -> Self {
        RenameLease {
            state: Mutex::new(LeaseState {
                holder: None,
                expires: Instant::now(),
                token: 0,
            }),
            timeout,
        }
    }

    /// Try to acquire the lease for `holder`. An expired lease is stolen.
    /// A live lease is never re-granted — not even to its own holder — so
    /// that two threads of one LibFS serialize exactly as all threads do on
    /// Linux's `s_vfs_rename_mutex`.
    pub fn try_acquire(&self, holder: HolderId) -> LeaseGrant {
        let mut s = self.state.lock();
        let now = Instant::now();
        let expired = s.holder.is_none() || now >= s.expires;
        if expired {
            s.holder = Some(holder);
            s.expires = now + self.timeout;
            s.token += 1;
            LeaseGrant::Granted { token: s.token }
        } else {
            LeaseGrant::Busy {
                remaining: s.expires.saturating_duration_since(now),
            }
        }
    }

    /// Acquire, spinning until granted (used by well-behaved LibFSes; the
    /// timeout bounds the wait when a malicious holder never releases).
    pub fn acquire_blocking(&self, holder: HolderId) -> u64 {
        loop {
            match self.try_acquire(holder) {
                LeaseGrant::Granted { token } => return token,
                LeaseGrant::Busy { remaining } => {
                    std::thread::sleep(remaining.min(Duration::from_micros(50)));
                }
            }
        }
    }

    /// Release the lease. A stale token (the lease was stolen after expiry)
    /// is ignored; returns whether the release took effect.
    pub fn release(&self, holder: HolderId, token: u64) -> bool {
        let mut s = self.state.lock();
        if s.holder == Some(holder) && s.token == token {
            s.holder = None;
            true
        } else {
            false
        }
    }

    /// Current holder, if the lease is live.
    pub fn holder(&self) -> Option<HolderId> {
        let s = self.state.lock();
        if s.holder.is_some() && Instant::now() < s.expires {
            s.holder
        } else {
            None
        }
    }

    /// Is `holder` currently holding a live lease?
    pub fn held_by(&self, holder: HolderId) -> bool {
        self.holder() == Some(holder)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grant_and_release() {
        let l = RenameLease::new(Duration::from_secs(10));
        let t = match l.try_acquire(1) {
            LeaseGrant::Granted { token } => token,
            g => panic!("expected grant, got {g:?}"),
        };
        assert!(l.held_by(1));
        assert!(matches!(l.try_acquire(2), LeaseGrant::Busy { .. }));
        assert!(l.release(1, t));
        assert!(matches!(l.try_acquire(2), LeaseGrant::Granted { .. }));
    }

    #[test]
    fn holder_cannot_reenter_live_lease() {
        // Two threads of one LibFS present the same holder id; the second
        // must wait, exactly like a second thread on s_vfs_rename_mutex.
        let l = RenameLease::new(Duration::from_secs(10));
        let t1 = match l.try_acquire(1) {
            LeaseGrant::Granted { token } => token,
            _ => unreachable!(),
        };
        assert!(matches!(l.try_acquire(1), LeaseGrant::Busy { .. }));
        assert!(l.release(1, t1));
        assert!(matches!(l.try_acquire(1), LeaseGrant::Granted { .. }));
    }

    #[test]
    fn expired_lease_is_stolen() {
        let l = RenameLease::new(Duration::from_millis(5));
        let t1 = match l.try_acquire(1) {
            LeaseGrant::Granted { token } => token,
            _ => unreachable!(),
        };
        std::thread::sleep(Duration::from_millis(10));
        // Holder 1's lease expired; a malicious App cannot hold it forever.
        let _t2 = match l.try_acquire(2) {
            LeaseGrant::Granted { token } => token,
            g => panic!("expired lease must be stealable, got {g:?}"),
        };
        assert!(l.held_by(2));
        // The stale holder's release is a no-op.
        assert!(!l.release(1, t1));
        assert!(l.held_by(2));
    }

    #[test]
    fn blocking_acquire_eventually_wins() {
        let l = std::sync::Arc::new(RenameLease::new(Duration::from_millis(10)));
        let _ = l.try_acquire(1); // held, will expire
        let l2 = l.clone();
        let h = std::thread::spawn(move || l2.acquire_blocking(2));
        let token = h.join().unwrap();
        assert!(token > 0);
        assert!(l.held_by(2));
    }

    #[test]
    fn holder_reports_none_after_expiry() {
        let l = RenameLease::new(Duration::from_millis(5));
        let _ = l.try_acquire(1);
        std::thread::sleep(Duration::from_millis(10));
        assert_eq!(l.holder(), None);
    }
}
