//! The resource-provider abstraction behind the kernel's grants.
//!
//! The controller hands LibFSes *extents* of two resources: data pages and
//! inode numbers. Both are "a set of integers with durable (or rebuildable)
//! occupancy state, sharded for multicore scalability", so both are served
//! by the same engine — [`pmem::ShardedPageAllocator`] — behind this trait.
//! kernelfs, fsck's cross-checks, and the tests program against the trait,
//! not the concrete allocator, which is what lets the inode-number pool be
//! a second allocator instance over a tiny volatile scratch bitmap instead
//! of a hand-rolled `Vec<u64>` free list under the kernel lock.

use pmem::{AllocStatsSnapshot, PmemDevice, ShardedPageAllocator};
use pmem::{PmemError, PmemResult};

/// A sharded allocator of integer-identified resources (pages, inode
/// numbers) with per-shard occupancy and contention counters.
///
/// Identifiers are absolute (page numbers, inode numbers), never
/// shard-relative; implementations own a contiguous range
/// `[first, first + count)` split into disjoint shards.
pub trait ResourceProvider: Send + Sync + std::fmt::Debug {
    /// Allocate `n` identifiers, home shard picked from the calling
    /// thread's identity. Fails with [`PmemError::NoSpace`] — leaving the
    /// provider unchanged — when fewer than `n` are free.
    fn alloc_extent(&self, n: usize) -> PmemResult<Vec<u64>>;

    /// As [`ResourceProvider::alloc_extent`] with an explicit home-shard
    /// hint (`hint % shard_count` is the home shard). Benches pin threads
    /// to shards through this.
    fn alloc_extent_hinted(&self, hint: usize, n: usize) -> PmemResult<Vec<u64>>;

    /// Return identifiers to circulation. Freeing an id that is not
    /// currently allocated is an error.
    fn free_extent(&self, ids: &[u64]) -> PmemResult<()>;

    /// Currently free identifiers across all shards.
    fn free_count(&self) -> u64;

    /// Currently allocated identifiers across all shards.
    fn allocated_count(&self) -> u64;

    /// Total identifiers managed (free + allocated).
    fn capacity(&self) -> u64;

    /// `(first, count)` of each shard's range, in shard order.
    fn shard_ranges(&self) -> Vec<(u64, u64)>;

    /// Is `id` currently allocated?
    fn is_allocated(&self, id: u64) -> PmemResult<bool>;

    /// Contention and occupancy counters since creation or the last
    /// [`ResourceProvider::reset_stats`].
    fn stats(&self) -> AllocStatsSnapshot;

    /// Zero the contention counters (occupancy is preserved).
    fn reset_stats(&self);
}

impl ResourceProvider for ShardedPageAllocator {
    fn alloc_extent(&self, n: usize) -> PmemResult<Vec<u64>> {
        ShardedPageAllocator::alloc_extent(self, n)
    }

    fn alloc_extent_hinted(&self, hint: usize, n: usize) -> PmemResult<Vec<u64>> {
        ShardedPageAllocator::alloc_extent_hinted(self, hint, n)
    }

    fn free_extent(&self, ids: &[u64]) -> PmemResult<()> {
        ShardedPageAllocator::free_extent(self, ids)
    }

    fn free_count(&self) -> u64 {
        ShardedPageAllocator::free_count(self)
    }

    fn allocated_count(&self) -> u64 {
        ShardedPageAllocator::allocated_count(self)
    }

    fn capacity(&self) -> u64 {
        self.page_count()
    }

    fn shard_ranges(&self) -> Vec<(u64, u64)> {
        ShardedPageAllocator::shard_ranges(self)
    }

    fn is_allocated(&self, id: u64) -> PmemResult<bool> {
        ShardedPageAllocator::is_allocated(self, id)
    }

    fn stats(&self) -> AllocStatsSnapshot {
        ShardedPageAllocator::stats(self)
    }

    fn reset_stats(&self) {
        ShardedPageAllocator::reset_stats(self)
    }
}

/// Length (bytes) of the scratch device backing a volatile pool over
/// `count` identifiers: the bitmap rounded up to whole words so the
/// allocator's atomic word RMWs stay in bounds.
fn scratch_len(count: u64) -> usize {
    (ShardedPageAllocator::bitmap_bytes(count) as usize).div_ceil(8) * 8
}

/// A sharded **volatile** pool over `[first, first + count)`, all free.
///
/// The pool is a [`ShardedPageAllocator`] whose "device" is a private
/// in-memory scratch buffer holding nothing but the occupancy bitmap
/// (bitmap offset 0). Persistence of that bitmap is meaningless — the
/// scratch device is dropped with the pool — which is exactly right for
/// inode numbers: their durable truth is the inode table's commit markers,
/// re-scanned on every recovery.
pub fn volatile_pool(first: u64, count: u64, shards: usize) -> ShardedPageAllocator {
    let device = PmemDevice::new(scratch_len(count));
    ShardedPageAllocator::format_with_shards(device, 0, first, count, shards)
        .expect("scratch bitmap formats in bounds")
}

/// A sharded volatile pool over `[first, first + count)` with the ids for
/// which `used` returns true pre-allocated — the recovery-time constructor
/// (the caller derives `used` from the inode table's commit markers).
pub fn volatile_pool_from_used(
    first: u64,
    count: u64,
    shards: usize,
    used: impl Fn(u64) -> bool,
) -> PmemResult<ShardedPageAllocator> {
    let device = PmemDevice::new(scratch_len(count));
    for id in first..first + count {
        if used(id) {
            let idx = id - first;
            let off = idx / 8;
            let byte = device.read_u8(off)?;
            device.write_u8(off, byte | 1 << (idx % 8))?;
        }
    }
    device.persist_all();
    ShardedPageAllocator::recover_with_shards(device, 0, first, count, shards)
}

/// Map an allocator failure to the matching [`vfs::FsError`]:
/// [`PmemError::NoSpace`] means exactly that; anything else is an internal
/// fault (out-of-bounds bitmap access, poisoned device).
pub fn provider_err(e: PmemError) -> vfs::FsError {
    match e {
        PmemError::NoSpace { .. } => vfs::FsError::NoSpace,
        other => vfs::FsError::Internal(other.to_string()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn data_allocator(shards: usize) -> ShardedPageAllocator {
        let device = PmemDevice::new(64 * pmem::PAGE_SIZE);
        ShardedPageAllocator::format_with_shards(device, 0, 4, 32, shards).unwrap()
    }

    #[test]
    fn trait_object_round_trip() {
        let provider: Box<dyn ResourceProvider> = Box::new(data_allocator(4));
        assert_eq!(provider.capacity(), 32);
        assert_eq!(provider.free_count(), 32);
        let got = provider.alloc_extent(5).unwrap();
        assert_eq!(got.len(), 5);
        assert_eq!(provider.allocated_count(), 5);
        for &p in &got {
            assert!(provider.is_allocated(p).unwrap());
        }
        provider.free_extent(&got).unwrap();
        assert_eq!(provider.free_count(), 32);
        assert_eq!(provider.shard_ranges().len(), 4);
        assert!(provider.stats().lock_acqs() > 0);
        provider.reset_stats();
        assert_eq!(provider.stats().lock_acqs(), 0);
    }

    #[test]
    fn volatile_pool_serves_whole_range() {
        let pool = volatile_pool(2, 10, 2);
        let mut all = Vec::new();
        for _ in 0..10 {
            all.push(ResourceProvider::alloc_extent(&pool, 1).unwrap()[0]);
        }
        all.sort_unstable();
        assert_eq!(all, (2..12).collect::<Vec<u64>>());
        match ResourceProvider::alloc_extent(&pool, 1) {
            Err(PmemError::NoSpace { requested, free }) => {
                assert_eq!((requested, free), (1, 0));
            }
            other => panic!("expected NoSpace, got {other:?}"),
        }
    }

    #[test]
    fn volatile_pool_from_used_preallocates() {
        let pool = volatile_pool_from_used(2, 10, 4, |id| id % 3 == 0).unwrap();
        // 3, 6, 9 used out of 2..=11.
        assert_eq!(pool.allocated_count(), 3);
        for id in 2..12u64 {
            assert_eq!(ResourceProvider::is_allocated(&pool, id).unwrap(), id % 3 == 0);
        }
        // Every remaining id is allocatable exactly once.
        let got = ResourceProvider::alloc_extent(&pool, 7).unwrap();
        let mut got: Vec<u64> = got;
        got.sort_unstable();
        assert_eq!(got, vec![2, 4, 5, 7, 8, 10, 11]);
        assert!(ResourceProvider::alloc_extent(&pool, 1).is_err());
    }

    #[test]
    fn provider_err_maps_no_space() {
        assert!(matches!(
            provider_err(PmemError::NoSpace {
                requested: 4,
                free: 1
            }),
            vfs::FsError::NoSpace
        ));
        assert!(matches!(
            provider_err(PmemError::OutOfBounds {
                offset: 0,
                len: 1,
                size: 0
            }),
            vfs::FsError::Internal(_)
        ));
    }
}
