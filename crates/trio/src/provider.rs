//! The resource-provider abstraction behind the kernel's grants.
//!
//! The controller hands LibFSes *extents* of two resources: data pages and
//! inode numbers. Both are "a set of integers with durable (or rebuildable)
//! occupancy state, sharded for multicore scalability", so both are served
//! by the same engine — [`pmem::ShardedPageAllocator`] — behind this trait.
//! kernelfs, fsck's cross-checks, and the tests program against the trait,
//! not the concrete allocator, which is what lets the inode-number pool be
//! a second allocator instance over a tiny volatile scratch bitmap instead
//! of a hand-rolled `Vec<u64>` free list under the kernel lock.

use std::collections::HashMap;

use parking_lot::Mutex;
use pmem::{AllocStatsSnapshot, PmemDevice, ShardedPageAllocator};
use pmem::{PmemError, PmemResult};
use vfs::QuotaKind;

/// A sharded allocator of integer-identified resources (pages, inode
/// numbers) with per-shard occupancy and contention counters.
///
/// Identifiers are absolute (page numbers, inode numbers), never
/// shard-relative; implementations own a contiguous range
/// `[first, first + count)` split into disjoint shards.
pub trait ResourceProvider: Send + Sync + std::fmt::Debug {
    /// Allocate `n` identifiers, home shard picked from the calling
    /// thread's identity. Fails with [`PmemError::NoSpace`] — leaving the
    /// provider unchanged — when fewer than `n` are free.
    fn alloc_extent(&self, n: usize) -> PmemResult<Vec<u64>>;

    /// As [`ResourceProvider::alloc_extent`] with an explicit home-shard
    /// hint (`hint % shard_count` is the home shard). Benches pin threads
    /// to shards through this.
    fn alloc_extent_hinted(&self, hint: usize, n: usize) -> PmemResult<Vec<u64>>;

    /// Return identifiers to circulation. Freeing an id that is not
    /// currently allocated is an error.
    fn free_extent(&self, ids: &[u64]) -> PmemResult<()>;

    /// Currently free identifiers across all shards.
    fn free_count(&self) -> u64;

    /// Currently allocated identifiers across all shards.
    fn allocated_count(&self) -> u64;

    /// Total identifiers managed (free + allocated).
    fn capacity(&self) -> u64;

    /// `(first, count)` of each shard's range, in shard order.
    fn shard_ranges(&self) -> Vec<(u64, u64)>;

    /// Is `id` currently allocated?
    fn is_allocated(&self, id: u64) -> PmemResult<bool>;

    /// Contention and occupancy counters since creation or the last
    /// [`ResourceProvider::reset_stats`].
    fn stats(&self) -> AllocStatsSnapshot;

    /// Zero the contention counters (occupancy is preserved).
    fn reset_stats(&self);

    // ---- per-tenant quota surface ------------------------------------
    //
    // The default implementations make every provider tenant-*oblivious*
    // at zero cost: `alloc_extent_for` is a plain `alloc_extent` and the
    // accounting queries return "nothing tracked". Only the
    // [`QuotaProvider`] wrapper overrides them, so a kernel built without
    // quotas pays for none of this (the pay-for-what-you-use rule the CI
    // differential leg pins).

    /// Allocate up to `n` identifiers charged to `tenant`. A quota-aware
    /// provider may return *fewer* than `n` (but at least one) when the
    /// tenant's remaining quota is smaller than the request — grant
    /// batching degrades gracefully as a tenant approaches its cap — and
    /// fails with [`ProviderError::Quota`] only when the remaining quota
    /// is zero.
    fn alloc_extent_for(&self, _tenant: u64, n: usize) -> Result<Vec<u64>, ProviderError> {
        self.alloc_extent(n).map_err(ProviderError::Pmem)
    }

    /// Return identifiers to circulation, uncharging the tenant that was
    /// charged for them (`tenant` is the fallback when the grant is not
    /// tracked, e.g. after a charge-table reseed).
    fn free_extent_for(&self, _tenant: u64, ids: &[u64]) -> Result<(), ProviderError> {
        self.free_extent(ids).map_err(ProviderError::Pmem)
    }

    /// Identifiers currently charged to `tenant` (0 when untracked).
    fn charged(&self, _tenant: u64) -> u64 {
        0
    }

    /// The per-tenant limit enforced for `tenant`, when quotas are on.
    fn quota_limit(&self, _tenant: u64) -> Option<u64> {
        None
    }

    /// Override the limit for one tenant. Returns false when the provider
    /// does not enforce quotas (the default).
    fn set_quota_limit(&self, _tenant: u64, _limit: u64) -> bool {
        false
    }

    /// Every `(tenant, charged)` pair currently tracked, tenant-sorted.
    /// Empty when quotas are off — the structural proof that no wrapper
    /// is installed.
    fn charged_tenants(&self) -> Vec<(u64, u64)> {
        Vec::new()
    }

    /// Allocations rejected because a tenant's quota was exhausted.
    fn quota_rejections(&self) -> u64 {
        0
    }
}

/// Failure of a tenant-aware provider operation.
#[derive(Debug)]
pub enum ProviderError {
    /// The underlying allocator failed (exhaustion, bounds, poisoning).
    Pmem(PmemError),
    /// The tenant's quota is exhausted. Says nothing about the device —
    /// other tenants can still allocate.
    Quota {
        /// The tenant whose quota ran out.
        tenant: u64,
        /// Which resource class.
        kind: QuotaKind,
    },
}

/// Map a tenant-aware provider failure to the matching [`vfs::FsError`].
pub fn tenant_err(e: ProviderError) -> vfs::FsError {
    match e {
        ProviderError::Pmem(p) => provider_err(p),
        ProviderError::Quota { tenant, kind } => vfs::FsError::QuotaExceeded { tenant, kind },
    }
}

/// Volatile per-tenant charge table of a [`QuotaProvider`].
#[derive(Debug, Default)]
struct QuotaTable {
    /// tenant → identifiers currently charged.
    charged: HashMap<u64, u64>,
    /// tenant → limit override (tenants absent here use the default).
    limits: HashMap<u64, u64>,
    /// id → tenant charged for it, so a free always uncharges the tenant
    /// that was granted the id, no matter who returns it.
    owner: HashMap<u64, u64>,
}

/// Per-tenant quota enforcement wrapped around any [`ResourceProvider`].
///
/// Charges are *volatile* bookkeeping over grants: a tenant is charged at
/// grant time (before any durable link exists) and uncharged at free. The
/// durable truth is narrower — exactly the identifiers referenced by
/// committed inodes, attributable to tenants through the inode `uid`
/// field — and recovery re-derives the charge table from those commit
/// markers via [`crate::fsck::derive_tenant_usage`] and
/// [`QuotaProvider::seed`]. The gap between the volatile charge and the
/// durable charge is the tenant's grant residue, which the per-tenant
/// fsck leak attribution pass ([`crate::fsck::attribute_tenant_leaks`])
/// reports.
///
/// Enforcement never serializes allocations: the charge is reserved under
/// the table lock, the underlying (sharded, concurrent) allocation runs
/// outside it, and a failed allocation rolls the reservation back.
#[derive(Debug)]
pub struct QuotaProvider {
    inner: Box<dyn ResourceProvider>,
    kind: QuotaKind,
    /// Uniform per-tenant limit for tenants without an override.
    default_limit: u64,
    table: Mutex<QuotaTable>,
    rejections: std::sync::atomic::AtomicU64,
}

impl QuotaProvider {
    /// Wrap `inner`, enforcing `default_limit` identifiers per tenant.
    pub fn new(inner: Box<dyn ResourceProvider>, kind: QuotaKind, default_limit: u64) -> Self {
        QuotaProvider {
            inner,
            kind,
            default_limit,
            table: Mutex::new(QuotaTable::default()),
            rejections: std::sync::atomic::AtomicU64::new(0),
        }
    }

    /// Replace the charge table with recovery-derived state: `charged` is
    /// tenant → durable charge, `owner` is id → tenant. Limit overrides
    /// are preserved.
    pub fn seed(&self, charged: HashMap<u64, u64>, owner: HashMap<u64, u64>) {
        let mut t = self.table.lock();
        t.charged = charged;
        t.owner = owner;
    }

    fn limit_of(&self, t: &QuotaTable, tenant: u64) -> u64 {
        t.limits.get(&tenant).copied().unwrap_or(self.default_limit)
    }
}

impl ResourceProvider for QuotaProvider {
    fn alloc_extent(&self, n: usize) -> PmemResult<Vec<u64>> {
        // Untracked escape hatch: charges no tenant. The kernel always
        // goes through `alloc_extent_for`.
        self.inner.alloc_extent(n)
    }

    fn alloc_extent_hinted(&self, hint: usize, n: usize) -> PmemResult<Vec<u64>> {
        self.inner.alloc_extent_hinted(hint, n)
    }

    fn free_extent(&self, ids: &[u64]) -> PmemResult<()> {
        self.inner.free_extent(ids)?;
        // Uncharge any tracked owners even on the untracked path, so no
        // free can strand a charge.
        let mut t = self.table.lock();
        for id in ids {
            if let Some(owner) = t.owner.remove(id) {
                if let Some(c) = t.charged.get_mut(&owner) {
                    *c = c.saturating_sub(1);
                }
            }
        }
        Ok(())
    }

    fn free_count(&self) -> u64 {
        self.inner.free_count()
    }

    fn allocated_count(&self) -> u64 {
        self.inner.allocated_count()
    }

    fn capacity(&self) -> u64 {
        self.inner.capacity()
    }

    fn shard_ranges(&self) -> Vec<(u64, u64)> {
        self.inner.shard_ranges()
    }

    fn is_allocated(&self, id: u64) -> PmemResult<bool> {
        self.inner.is_allocated(id)
    }

    fn stats(&self) -> AllocStatsSnapshot {
        self.inner.stats()
    }

    fn reset_stats(&self) {
        self.inner.reset_stats()
    }

    fn alloc_extent_for(&self, tenant: u64, n: usize) -> Result<Vec<u64>, ProviderError> {
        debug_assert!(n > 0);
        // Reserve under the table lock, allocate outside it.
        let take = {
            let mut t = self.table.lock();
            let limit = self.limit_of(&t, tenant);
            let cur = t.charged.get(&tenant).copied().unwrap_or(0);
            let remaining = limit.saturating_sub(cur);
            if remaining == 0 {
                drop(t);
                self.rejections
                    .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                return Err(ProviderError::Quota {
                    tenant,
                    kind: self.kind,
                });
            }
            let take = n.min(remaining as usize);
            *t.charged.entry(tenant).or_insert(0) += take as u64;
            take
        };
        // Tenant-keyed home shard: a tenant's grants come from "its"
        // shard, which is what makes per-shard steal counters readable as
        // cross-tenant pressure.
        match self.inner.alloc_extent_hinted(tenant as usize, take) {
            Ok(ids) => {
                let mut t = self.table.lock();
                for &id in &ids {
                    t.owner.insert(id, tenant);
                }
                Ok(ids)
            }
            Err(e) => {
                let mut t = self.table.lock();
                if let Some(c) = t.charged.get_mut(&tenant) {
                    *c = c.saturating_sub(take as u64);
                }
                Err(ProviderError::Pmem(e))
            }
        }
    }

    fn free_extent_for(&self, tenant: u64, ids: &[u64]) -> Result<(), ProviderError> {
        self.inner.free_extent(ids).map_err(ProviderError::Pmem)?;
        let mut t = self.table.lock();
        for id in ids {
            let owner = t.owner.remove(id).unwrap_or(tenant);
            if let Some(c) = t.charged.get_mut(&owner) {
                *c = c.saturating_sub(1);
            }
        }
        Ok(())
    }

    fn charged(&self, tenant: u64) -> u64 {
        self.table.lock().charged.get(&tenant).copied().unwrap_or(0)
    }

    fn quota_limit(&self, tenant: u64) -> Option<u64> {
        Some(self.limit_of(&self.table.lock(), tenant))
    }

    fn set_quota_limit(&self, tenant: u64, limit: u64) -> bool {
        self.table.lock().limits.insert(tenant, limit);
        true
    }

    fn charged_tenants(&self) -> Vec<(u64, u64)> {
        let t = self.table.lock();
        let mut out: Vec<(u64, u64)> = t
            .charged
            .iter()
            .filter(|(_, &c)| c > 0)
            .map(|(&k, &v)| (k, v))
            .collect();
        out.sort_unstable();
        out
    }

    fn quota_rejections(&self) -> u64 {
        self.rejections.load(std::sync::atomic::Ordering::Relaxed)
    }
}

impl ResourceProvider for ShardedPageAllocator {
    fn alloc_extent(&self, n: usize) -> PmemResult<Vec<u64>> {
        ShardedPageAllocator::alloc_extent(self, n)
    }

    fn alloc_extent_hinted(&self, hint: usize, n: usize) -> PmemResult<Vec<u64>> {
        ShardedPageAllocator::alloc_extent_hinted(self, hint, n)
    }

    fn free_extent(&self, ids: &[u64]) -> PmemResult<()> {
        ShardedPageAllocator::free_extent(self, ids)
    }

    fn free_count(&self) -> u64 {
        ShardedPageAllocator::free_count(self)
    }

    fn allocated_count(&self) -> u64 {
        ShardedPageAllocator::allocated_count(self)
    }

    fn capacity(&self) -> u64 {
        self.page_count()
    }

    fn shard_ranges(&self) -> Vec<(u64, u64)> {
        ShardedPageAllocator::shard_ranges(self)
    }

    fn is_allocated(&self, id: u64) -> PmemResult<bool> {
        ShardedPageAllocator::is_allocated(self, id)
    }

    fn stats(&self) -> AllocStatsSnapshot {
        ShardedPageAllocator::stats(self)
    }

    fn reset_stats(&self) {
        ShardedPageAllocator::reset_stats(self)
    }
}

/// Length (bytes) of the scratch device backing a volatile pool over
/// `count` identifiers: the bitmap rounded up to whole words so the
/// allocator's atomic word RMWs stay in bounds.
fn scratch_len(count: u64) -> usize {
    (ShardedPageAllocator::bitmap_bytes(count) as usize).div_ceil(8) * 8
}

/// A sharded **volatile** pool over `[first, first + count)`, all free.
///
/// The pool is a [`ShardedPageAllocator`] whose "device" is a private
/// in-memory scratch buffer holding nothing but the occupancy bitmap
/// (bitmap offset 0). Persistence of that bitmap is meaningless — the
/// scratch device is dropped with the pool — which is exactly right for
/// inode numbers: their durable truth is the inode table's commit markers,
/// re-scanned on every recovery.
pub fn volatile_pool(first: u64, count: u64, shards: usize) -> ShardedPageAllocator {
    let device = PmemDevice::new(scratch_len(count));
    ShardedPageAllocator::format_with_shards(device, 0, first, count, shards)
        .expect("scratch bitmap formats in bounds")
}

/// A sharded volatile pool over `[first, first + count)` with the ids for
/// which `used` returns true pre-allocated — the recovery-time constructor
/// (the caller derives `used` from the inode table's commit markers).
pub fn volatile_pool_from_used(
    first: u64,
    count: u64,
    shards: usize,
    used: impl Fn(u64) -> bool,
) -> PmemResult<ShardedPageAllocator> {
    let device = PmemDevice::new(scratch_len(count));
    for id in first..first + count {
        if used(id) {
            let idx = id - first;
            let off = idx / 8;
            let byte = device.read_u8(off)?;
            device.write_u8(off, byte | 1 << (idx % 8))?;
        }
    }
    device.persist_all();
    ShardedPageAllocator::recover_with_shards(device, 0, first, count, shards)
}

/// Map an allocator failure to the matching [`vfs::FsError`]:
/// [`PmemError::NoSpace`] means exactly that; anything else is an internal
/// fault (out-of-bounds bitmap access, poisoned device).
pub fn provider_err(e: PmemError) -> vfs::FsError {
    match e {
        PmemError::NoSpace { .. } => vfs::FsError::NoSpace,
        other => vfs::FsError::Internal(other.to_string()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn data_allocator(shards: usize) -> ShardedPageAllocator {
        let device = PmemDevice::new(64 * pmem::PAGE_SIZE);
        ShardedPageAllocator::format_with_shards(device, 0, 4, 32, shards).unwrap()
    }

    #[test]
    fn trait_object_round_trip() {
        let provider: Box<dyn ResourceProvider> = Box::new(data_allocator(4));
        assert_eq!(provider.capacity(), 32);
        assert_eq!(provider.free_count(), 32);
        let got = provider.alloc_extent(5).unwrap();
        assert_eq!(got.len(), 5);
        assert_eq!(provider.allocated_count(), 5);
        for &p in &got {
            assert!(provider.is_allocated(p).unwrap());
        }
        provider.free_extent(&got).unwrap();
        assert_eq!(provider.free_count(), 32);
        assert_eq!(provider.shard_ranges().len(), 4);
        assert!(provider.stats().lock_acqs() > 0);
        provider.reset_stats();
        assert_eq!(provider.stats().lock_acqs(), 0);
    }

    #[test]
    fn volatile_pool_serves_whole_range() {
        let pool = volatile_pool(2, 10, 2);
        let mut all = Vec::new();
        for _ in 0..10 {
            all.push(ResourceProvider::alloc_extent(&pool, 1).unwrap()[0]);
        }
        all.sort_unstable();
        assert_eq!(all, (2..12).collect::<Vec<u64>>());
        match ResourceProvider::alloc_extent(&pool, 1) {
            Err(PmemError::NoSpace { requested, free }) => {
                assert_eq!((requested, free), (1, 0));
            }
            other => panic!("expected NoSpace, got {other:?}"),
        }
    }

    #[test]
    fn volatile_pool_from_used_preallocates() {
        let pool = volatile_pool_from_used(2, 10, 4, |id| id % 3 == 0).unwrap();
        // 3, 6, 9 used out of 2..=11.
        assert_eq!(pool.allocated_count(), 3);
        for id in 2..12u64 {
            assert_eq!(ResourceProvider::is_allocated(&pool, id).unwrap(), id % 3 == 0);
        }
        // Every remaining id is allocatable exactly once.
        let got = ResourceProvider::alloc_extent(&pool, 7).unwrap();
        let mut got: Vec<u64> = got;
        got.sort_unstable();
        assert_eq!(got, vec![2, 4, 5, 7, 8, 10, 11]);
        assert!(ResourceProvider::alloc_extent(&pool, 1).is_err());
    }

    #[test]
    fn quota_enforced_per_tenant() {
        let q = QuotaProvider::new(Box::new(data_allocator(2)), QuotaKind::Pages, 8);
        // Tenant 1 can take exactly its quota, in shrinking batches.
        let a = q.alloc_extent_for(1, 6).unwrap();
        assert_eq!(a.len(), 6);
        let b = q.alloc_extent_for(1, 6).unwrap();
        assert_eq!(b.len(), 2, "grant clamps to the remaining quota");
        assert_eq!(q.charged(1), 8);
        match q.alloc_extent_for(1, 1) {
            Err(ProviderError::Quota { tenant, kind }) => {
                assert_eq!((tenant, kind), (1, QuotaKind::Pages));
            }
            other => panic!("expected Quota, got {other:?}"),
        }
        assert_eq!(q.quota_rejections(), 1);
        // Tenant 2 is unaffected by tenant 1's exhaustion.
        let c = q.alloc_extent_for(2, 4).unwrap();
        assert_eq!(c.len(), 4);
        assert_eq!(q.charged_tenants(), vec![(1, 8), (2, 4)]);
        // Uncharge follows the *granting* tenant, whoever frees.
        q.free_extent_for(2, &a).unwrap();
        assert_eq!(q.charged(1), 2);
        assert_eq!(q.charged(2), 4);
        // Freed quota is allocatable again.
        assert_eq!(q.alloc_extent_for(1, 6).unwrap().len(), 6);
    }

    #[test]
    fn quota_limit_overrides_and_seeding() {
        let q = QuotaProvider::new(Box::new(data_allocator(1)), QuotaKind::Inodes, 100);
        assert_eq!(q.quota_limit(7), Some(100));
        assert!(q.set_quota_limit(7, 2));
        assert_eq!(q.quota_limit(7), Some(2));
        let got = q.alloc_extent_for(7, 10).unwrap();
        assert_eq!(got.len(), 2);
        assert!(q.alloc_extent_for(7, 1).is_err());
        // Recovery reseed replaces charges and owners wholesale.
        let mut charged = HashMap::new();
        charged.insert(9u64, 1u64);
        let mut owner = HashMap::new();
        owner.insert(got[0], 9u64);
        q.seed(charged, owner);
        assert_eq!(q.charged(7), 0);
        assert_eq!(q.charged(9), 1);
        q.free_extent_for(7, &got[..1]).unwrap();
        assert_eq!(q.charged(9), 0, "seeded owner wins over the caller");
    }

    #[test]
    fn quota_rolls_back_reservation_on_exhaustion() {
        // Device holds 32 pages; quota is larger, so device exhaustion
        // (not quota) fires — and must not leave a stranded charge.
        let q = QuotaProvider::new(Box::new(data_allocator(2)), QuotaKind::Pages, 1000);
        let held = q.alloc_extent_for(1, 30).unwrap();
        assert_eq!(held.len(), 30);
        match q.alloc_extent_for(1, 5) {
            Err(ProviderError::Pmem(PmemError::NoSpace { .. })) => {}
            other => panic!("expected NoSpace, got {other:?}"),
        }
        assert_eq!(q.charged(1), 30, "failed alloc must not stay charged");
    }

    #[test]
    fn bare_provider_is_quota_oblivious() {
        // The trait defaults: no charges, no limits, no rejections — the
        // pay-for-what-you-use contract for kernels built without quotas.
        let p: Box<dyn ResourceProvider> = Box::new(data_allocator(2));
        let got = p.alloc_extent_for(5, 4).unwrap();
        assert_eq!(got.len(), 4);
        assert_eq!(p.charged(5), 0);
        assert_eq!(p.quota_limit(5), None);
        assert!(!p.set_quota_limit(5, 1));
        assert!(p.charged_tenants().is_empty());
        assert_eq!(p.quota_rejections(), 0);
        p.free_extent_for(5, &got).unwrap();
    }

    #[test]
    fn tenant_err_maps_quota_and_pmem() {
        match tenant_err(ProviderError::Quota {
            tenant: 3,
            kind: QuotaKind::Pages,
        }) {
            vfs::FsError::QuotaExceeded { tenant, kind } => {
                assert_eq!((tenant, kind), (3, QuotaKind::Pages));
            }
            other => panic!("expected QuotaExceeded, got {other:?}"),
        }
        assert!(matches!(
            tenant_err(ProviderError::Pmem(PmemError::NoSpace {
                requested: 1,
                free: 0
            })),
            vfs::FsError::NoSpace
        ));
    }

    #[test]
    fn provider_err_maps_no_space() {
        assert!(matches!(
            provider_err(PmemError::NoSpace {
                requested: 4,
                free: 1
            }),
            vfs::FsError::NoSpace
        ));
        assert!(matches!(
            provider_err(PmemError::OutOfBounds {
                offset: 0,
                len: 1,
                size: 0
            }),
            vfs::FsError::Internal(_)
        ));
    }
}
