//! Offline consistency check (the crash-recovery oracle).
//!
//! `fsck` walks the core state of a device image from the root directory,
//! exactly as a remounting kernel would, and classifies everything it finds.
//! The crash-consistency checker (`crates/crashmc`) runs it over sampled
//! crash images; a **fatal** issue means the image violates the crash
//! consistency the paper's §4.2 commit-marker protocol is supposed to
//! guarantee:
//!
//! * a dentry with a valid commit marker whose payload was not fully
//!   persisted (NUL bytes inside the name) — the paper's "partially
//!   persisted dentry";
//! * a live dentry referencing an inode whose own commit marker is unset —
//!   the "partially persisted inode";
//! * duplicate names, malformed types, directory cycles, a directory
//!   reachable through two parents.
//!
//! **Benign** findings are expected crash residue that recovery simply
//! cleans up: committed inodes no dentry references (the create crashed
//! before the dentry's marker persisted), stale directory size fields,
//! and — with group durability (DESIGN.md §8) — records above a
//! directory's persisted batch watermark (the open batch rolls back
//! wholesale) or live records a newer *negative* record supersedes (a
//! batched unlink whose deferred tombstone did not persist). Liveness is
//! therefore decided by per-name sequence resolution over committed
//! records below the watermark, the same rule recovery applies.

use std::collections::{HashMap, HashSet};
use std::sync::Arc;

use pmem::PmemDevice;

use crate::format::{self, Geometry, InodeType};
use crate::ROOT_INO;

/// One finding from the walk.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FsckIssue {
    /// A committed dentry whose name contains NUL bytes: the §4.2
    /// partially persisted dentry. **Fatal.**
    PartialDentry {
        /// Directory containing the dentry.
        dir: u64,
        /// Device offset of the record.
        offset: u64,
    },
    /// A live dentry referencing an uncommitted inode: the §4.2 partially
    /// persisted inode. **Fatal.**
    DanglingDentry {
        /// Directory containing the dentry.
        dir: u64,
        /// The referenced inode.
        child: u64,
        /// The (lossy) name.
        name: String,
    },
    /// Two live dentries with the same name in one directory. **Fatal.**
    DuplicateName {
        /// The directory.
        dir: u64,
        /// The duplicated name.
        name: String,
    },
    /// An inode reachable through two parents, or an ancestor of itself
    /// (§4.6 directory cycle). **Fatal.**
    MultiplyReachable {
        /// The inode reached twice.
        ino: u64,
    },
    /// A malformed inode type tag. **Fatal.**
    BadType {
        /// The inode.
        ino: u64,
        /// The raw tag.
        raw: u32,
    },
    /// Structural corruption (bad page pointer, log cycle). **Fatal.**
    Structural {
        /// The inode being walked.
        ino: u64,
        /// Description.
        detail: String,
    },
    /// A committed inode not reachable from the root — crash residue from a
    /// create whose dentry never persisted. Recovery reclaims it. Benign.
    OrphanInode {
        /// The orphan.
        ino: u64,
    },
    /// A directory cycle among inodes disconnected from the root — the
    /// §4.6 bug's signature. **Fatal.**
    DirCycle {
        /// A directory on the cycle.
        ino: u64,
    },
    /// Two live dentries in one directory referencing the same inode —
    /// crash residue of a same-directory rename (the new name committed,
    /// the old name's tombstone did not persist). Recovery keeps the
    /// newer record by sequence number. Benign.
    RenameResidue {
        /// The directory.
        dir: u64,
        /// The doubly-named inode.
        ino: u64,
    },
    /// A directory size field that does not match the live entry count —
    /// crash residue (the size store was after the dentry commit). Benign.
    SizeMismatch {
        /// The directory.
        dir: u64,
        /// Recorded size.
        recorded: u64,
        /// Counted live entries.
        actual: u64,
    },
    /// Dentry records above the directory's persisted group-durability
    /// watermark: an open commit batch was in flight at the crash
    /// (DESIGN.md §8). Recovery rolls the whole batch back. Benign.
    BatchResidue {
        /// The directory.
        dir: u64,
        /// The persisted watermark (`batch_seq`).
        watermark: u64,
    },
    /// A live dentry superseded by a newer *negative* (deleted) record
    /// with the same name and inode — residue of a batched unlink or
    /// rename whose deferred in-place tombstone did not persist. Recovery
    /// resolves by sequence number; the name is dead. Benign.
    UnlinkResidue {
        /// The directory.
        dir: u64,
        /// The superseded name.
        name: String,
    },
    /// A page whose bitmap bit is durably set but which no committed inode
    /// references — residue of an extent granted to a LibFS (allocate-
    /// then-link persists the bit first) and lost to a crash before
    /// linking. Recovery clears the bit. Benign.
    PageLeak {
        /// The allocator shard owning the page's range.
        shard: usize,
        /// The leaked page.
        page: u64,
    },
    /// A page referenced by a reachable inode whose bitmap bit is clear:
    /// the allocator could hand it out again — a double allocation waiting
    /// to happen. Violates the allocate-then-link ordering contract.
    /// **Fatal.**
    PageNotAllocated {
        /// The page.
        page: u64,
        /// The referencing inode.
        ino: u64,
    },
    /// A page referenced by two distinct reachable inodes: a double
    /// allocation has already happened. **Fatal.**
    PageDoubleUse {
        /// The page.
        page: u64,
        /// The second referencing inode.
        ino: u64,
        /// The first referencing inode.
        other: u64,
    },
}

impl FsckIssue {
    /// Does this issue violate crash consistency (as opposed to being
    /// recoverable crash residue)?
    pub fn is_fatal(&self) -> bool {
        !matches!(
            self,
            FsckIssue::OrphanInode { .. }
                | FsckIssue::SizeMismatch { .. }
                | FsckIssue::RenameResidue { .. }
                | FsckIssue::BatchResidue { .. }
                | FsckIssue::UnlinkResidue { .. }
                | FsckIssue::PageLeak { .. }
        )
    }
}

/// Result of a device walk.
#[derive(Debug, Clone, Default)]
pub struct FsckReport {
    /// Inodes reachable from the root.
    pub reachable: u64,
    /// Everything the walk noticed.
    pub issues: Vec<FsckIssue>,
}

impl FsckReport {
    /// Only the fatal issues.
    pub fn fatal(&self) -> Vec<&FsckIssue> {
        self.issues.iter().filter(|i| i.is_fatal()).collect()
    }

    /// True when the image is crash-consistent (no fatal issues).
    pub fn is_consistent(&self) -> bool {
        self.issues.iter().all(|i| !i.is_fatal())
    }
}

/// Walk a device image and produce a report. Fails with a message only if
/// the superblock itself is unreadable (nothing to walk).
pub fn fsck(device: &Arc<PmemDevice>) -> Result<FsckReport, String> {
    let geom = format::read_superblock(device)?;
    Ok(fsck_with_geometry(device, &geom))
}

/// Walk with a known geometry (used when the superblock is trusted).
pub fn fsck_with_geometry(device: &Arc<PmemDevice>, geom: &Geometry) -> FsckReport {
    let mut report = FsckReport::default();
    let mut visited: HashSet<u64> = HashSet::new();

    let root = match format::read_inode(device, geom, ROOT_INO) {
        Ok(i) => i,
        Err(e) => {
            report.issues.push(FsckIssue::Structural {
                ino: ROOT_INO,
                detail: e.to_string(),
            });
            return report;
        }
    };
    if !root.is_committed(ROOT_INO) {
        report.issues.push(FsckIssue::Structural {
            ino: ROOT_INO,
            detail: "root inode not committed".into(),
        });
        return report;
    }

    walk_dir(device, geom, ROOT_INO, &mut visited, &mut report, 0);

    // Orphan scan: committed inodes the walk never reached.
    let mut orphan_dirs = Vec::new();
    for ino in 1..=geom.max_inodes {
        if visited.contains(&ino) || ino == ROOT_INO {
            continue;
        }
        let marker = match device.read_u64(geom.inode_offset(ino)) {
            Ok(m) => m,
            Err(_) => break,
        };
        if marker == ino {
            report.issues.push(FsckIssue::OrphanInode { ino });
            if let Ok(inode) = format::read_inode(device, geom, ino) {
                if inode.inode_type() == Some(InodeType::Directory) {
                    orphan_dirs.push(ino);
                }
            }
        }
    }

    // Cycle detection among orphan directories: a directory disconnected
    // from the root that is reachable from itself is the §4.6 directory
    // cycle (two concurrent cross-directory renames, or a rename into the
    // directory's own descendant).
    let mut cleared: HashSet<u64> = HashSet::new();
    for &start in &orphan_dirs {
        if cleared.contains(&start) {
            continue;
        }
        let mut path: Vec<u64> = Vec::new();
        let mut on_path: HashSet<u64> = HashSet::new();
        let mut cycle = None;
        // Iterative DFS over dir children.
        let mut stack: Vec<(u64, Vec<u64>)> = vec![(start, dir_children(device, geom, start))];
        path.push(start);
        on_path.insert(start);
        while let Some((_, children)) = stack.last_mut() {
            match children.pop() {
                Some(c) => {
                    if on_path.contains(&c) {
                        cycle = Some(c);
                        break;
                    }
                    if cleared.contains(&c) {
                        continue;
                    }
                    let is_dir = format::read_inode(device, geom, c)
                        .ok()
                        .and_then(|i| i.inode_type())
                        == Some(InodeType::Directory);
                    if is_dir {
                        path.push(c);
                        on_path.insert(c);
                        stack.push((c, dir_children(device, geom, c)));
                    }
                }
                None => {
                    let (done, _) = stack.pop().expect("non-empty stack");
                    cleared.insert(done);
                    on_path.remove(&done);
                    path.pop();
                }
            }
        }
        if let Some(ino) = cycle {
            report.issues.push(FsckIssue::DirCycle { ino });
        }
    }

    audit_pages(device, geom, &visited, &mut report);

    report.reachable = visited.len() as u64 + 1; // + root
    report
}

/// Every data page referenced by one committed inode: directory log chains
/// (per tail, following `DP_NEXT`), file direct pointers, and the indirect
/// and double-indirect trees (pointer pages included). Out-of-range
/// pointers are skipped (the walk reports them as structural); chain hops
/// are bounded so a log cycle cannot hang the scan.
fn inode_pages(device: &Arc<PmemDevice>, geom: &Geometry, inode: &format::RawInode) -> Vec<u64> {
    let in_range = |p: u64| p >= geom.data_start_page && p < geom.total_pages;
    let read_ptr = |page: u64, slot: u64| {
        device
            .read_u64(geom.page_offset(page) + slot * 8)
            .unwrap_or(0)
    };
    let mut out = Vec::new();
    match inode.inode_type() {
        Some(InodeType::Directory) => {
            let ntails = (inode.ntails as usize).min(format::NDIRECT);
            for tail in 0..ntails {
                let mut page = inode.direct[tail];
                let mut hops = 0u64;
                while page != 0 && in_range(page) && hops <= geom.total_pages {
                    hops += 1;
                    out.push(page);
                    page = read_ptr(page, format::DP_NEXT / 8);
                }
            }
        }
        Some(InodeType::Regular) => {
            // Extent mapping (DESIGN.md §11): leaf pages plus every
            // committed run's data pages. Torn records (len == 0) are
            // invisible — their pages fall out as benign PageLeak residue.
            let mut leaves = Vec::new();
            let _ = format::walk_extents(
                device,
                geom,
                inode,
                |leaf| leaves.push(leaf),
                |e| out.extend(e.page..e.page + e.len),
            );
            out.append(&mut leaves);
            out.extend(inode.direct.iter().copied().filter(|&p| in_range(p)));
            if in_range(inode.indirect) {
                out.push(inode.indirect);
                for i in 0..format::PTRS_PER_PAGE {
                    let p = read_ptr(inode.indirect, i);
                    if in_range(p) {
                        out.push(p);
                    }
                }
            }
            if in_range(inode.dindirect) {
                out.push(inode.dindirect);
                for i in 0..format::PTRS_PER_PAGE {
                    let l1 = read_ptr(inode.dindirect, i);
                    if !in_range(l1) {
                        continue;
                    }
                    out.push(l1);
                    for j in 0..format::PTRS_PER_PAGE {
                        let p = read_ptr(l1, j);
                        if in_range(p) {
                            out.push(p);
                        }
                    }
                }
            }
        }
        None => {}
    }
    out
}

/// Every data page referenced by *any* committed inode — the reachable
/// page set the bitmap is cross-checked against. Shared with
/// [`crate::Kernel::recover`], which frees the set-but-unreferenced
/// remainder (the leaked grants).
pub(crate) fn referenced_pages(
    device: &Arc<PmemDevice>,
    geom: &Geometry,
) -> Result<HashSet<u64>, String> {
    let mut set = HashSet::new();
    for ino in 1..=geom.max_inodes {
        let inode = match format::read_inode(device, geom, ino) {
            Ok(i) => i,
            Err(e) => return Err(e.to_string()),
        };
        if inode.is_committed(ino) {
            set.extend(inode_pages(device, geom, &inode));
        }
    }
    Ok(set)
}

/// Durable per-tenant resource charges, re-derived from commit markers.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TenantCharges {
    /// Data pages referenced by the tenant's committed inodes.
    pub pages: u64,
    /// Committed inodes owned by the tenant.
    pub inodes: u64,
}

/// Durable tenant usage derived from the inode table: per-tenant charges
/// plus the id → tenant ownership maps the [`crate::QuotaProvider`]
/// reseeds its charge table from at recovery.
#[derive(Debug, Default)]
pub struct TenantUsage {
    /// tenant (inode `uid`) → durable charges.
    pub charges: HashMap<u64, TenantCharges>,
    /// page → owning tenant (first committed referencing inode wins).
    pub page_owner: HashMap<u64, u64>,
    /// ino → owning tenant.
    pub ino_owner: HashMap<u64, u64>,
}

/// Walk every committed inode and attribute durable charges to tenants.
///
/// This is the **quota durability rule** (DESIGN.md §12): a tenant's
/// durable charge is exactly what its committed inodes pin — the inode
/// itself (inode charge) and every page the inode references (page
/// charge), attributed through the inode's durable `uid` field. Grants
/// that never reached a commit marker are volatile residue: recovery
/// rolls them back, so they never survive a crash as charges.
pub fn derive_tenant_usage(
    device: &Arc<PmemDevice>,
    geom: &Geometry,
) -> Result<TenantUsage, String> {
    let mut usage = TenantUsage::default();
    for ino in 1..=geom.max_inodes {
        let inode = match format::read_inode(device, geom, ino) {
            Ok(i) => i,
            Err(e) => return Err(e.to_string()),
        };
        if !inode.is_committed(ino) {
            continue;
        }
        let tenant = inode.uid as u64;
        let entry = usage.charges.entry(tenant).or_default();
        entry.inodes += 1;
        usage.ino_owner.insert(ino, tenant);
        for page in inode_pages(device, geom, &inode) {
            if usage.page_owner.insert(page, tenant).is_none() {
                usage.charges.entry(tenant).or_default().pages += 1;
            }
        }
    }
    Ok(usage)
}

/// One tenant's grant residue: its volatile charge sits above its durable
/// charge, meaning extents were granted but never durably linked. Benign
/// (recovery reclaims the residue) but attributable — this is the
/// per-tenant refinement of [`FsckIssue::PageLeak`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TenantLeak {
    /// The tenant holding the residue.
    pub tenant: u64,
    /// Which resource class.
    pub kind: vfs::QuotaKind,
    /// The provider's volatile charge for the tenant.
    pub charged: u64,
    /// The durable charge re-derived from commit markers.
    pub durable: u64,
}

impl TenantLeak {
    /// Identifiers charged but not durably linked.
    pub fn leaked(&self) -> u64 {
        self.charged - self.durable
    }
}

/// Audit a provider's volatile per-tenant charges (its
/// [`crate::ResourceProvider::charged_tenants`] output) against the
/// durable usage of [`derive_tenant_usage`], attributing any excess to
/// the tenant holding it. A durable charge *above* the volatile one is
/// impossible under the charge-at-grant rule and is reported too (as a
/// negative-residue entry with `charged < durable`) so accounting bugs
/// cannot hide.
pub fn attribute_tenant_leaks(
    kind: vfs::QuotaKind,
    charged: &[(u64, u64)],
    usage: &TenantUsage,
) -> Vec<TenantLeak> {
    let mut out = Vec::new();
    for &(tenant, c) in charged {
        let durable = usage
            .charges
            .get(&tenant)
            .map(|tc| match kind {
                vfs::QuotaKind::Pages => tc.pages,
                vfs::QuotaKind::Inodes => tc.inodes,
            })
            .unwrap_or(0);
        if c != durable {
            out.push(TenantLeak {
                tenant,
                kind,
                charged: c,
                durable,
            });
        }
    }
    out
}

/// Per-shard page audit: cross-check the durable allocator bitmap against
/// the page set referenced by committed inodes.
///
/// * referenced by a *reachable* inode, bit clear → [`FsckIssue::PageNotAllocated`]
///   (fatal: the allocator would hand the page out again);
/// * referenced by two reachable inodes → [`FsckIssue::PageDoubleUse`] (fatal);
/// * bit set, referenced by nothing → [`FsckIssue::PageLeak`] (benign grant
///   residue, attributed to the shard that owns the page's range).
///
/// Orphan (committed but unreachable) inodes keep their pages out of the
/// leak class — an orphaned create is itself benign residue — but do not
/// participate in the double-use check: a freed-and-reallocated page can
/// legitimately appear under both an orphan and its reallocating owner.
fn audit_pages(
    device: &Arc<PmemDevice>,
    geom: &Geometry,
    visited: &HashSet<u64>,
    report: &mut FsckReport,
) {
    let mut owner: HashMap<u64, u64> = HashMap::new(); // page → reachable owner
    let mut referenced: HashSet<u64> = HashSet::new();
    for ino in 1..=geom.max_inodes {
        let inode = match format::read_inode(device, geom, ino) {
            Ok(i) => i,
            Err(_) => return, // table unreadable: already reported
        };
        if !inode.is_committed(ino) {
            continue;
        }
        let reachable = ino == ROOT_INO || visited.contains(&ino);
        let mut mine: HashSet<u64> = HashSet::new();
        for page in inode_pages(device, geom, &inode) {
            referenced.insert(page);
            if !reachable || !mine.insert(page) {
                continue;
            }
            match owner.get(&page) {
                Some(&other) if other != ino => {
                    report.issues.push(FsckIssue::PageDoubleUse {
                        page,
                        ino,
                        other,
                    });
                }
                _ => {
                    owner.insert(page, ino);
                }
            }
        }
    }

    let nbytes = pmem::ShardedPageAllocator::bitmap_bytes(geom.data_pages()) as usize;
    let mut bitmap = vec![0u8; nbytes];
    if device.read(geom.bitmap_offset(), &mut bitmap).is_err() {
        return;
    }
    let ranges = pmem::ShardedPageAllocator::shard_ranges_for(
        geom.data_start_page,
        geom.data_pages(),
        pmem::default_alloc_shards(),
    );
    for page in geom.data_start_page..geom.total_pages {
        let idx = page - geom.data_start_page;
        let bit = bitmap[(idx / 8) as usize] & (1 << (idx % 8)) != 0;
        if let Some(&ino) = owner.get(&page) {
            if !bit {
                report.issues.push(FsckIssue::PageNotAllocated { page, ino });
            }
        } else if bit && !referenced.contains(&page) {
            let shard = ranges
                .iter()
                .position(|&(first, count)| page >= first && page < first + count)
                .unwrap_or(0);
            report.issues.push(FsckIssue::PageLeak { shard, page });
        }
    }
}

/// Child inode numbers of a directory's live dentries (best effort; used by
/// the orphan cycle scan).
fn dir_children(device: &Arc<PmemDevice>, geom: &Geometry, dir: u64) -> Vec<u64> {
    let mut out = Vec::new();
    if let Ok(inode) = format::read_inode(device, geom, dir) {
        let wm = inode.batch_seq;
        let _ = format::walk_dir_log(device, geom, &inode, |d| {
            if d.is_live() && d.ino != 0 && d.ino <= geom.max_inodes && (wm == 0 || d.seq <= wm) {
                out.push(d.ino);
            }
        });
    }
    out
}

fn walk_dir(
    device: &Arc<PmemDevice>,
    geom: &Geometry,
    dir: u64,
    visited: &mut HashSet<u64>,
    report: &mut FsckReport,
    depth: u32,
) {
    if depth > 512 {
        report.issues.push(FsckIssue::Structural {
            ino: dir,
            detail: "directory nesting too deep (possible cycle)".into(),
        });
        return;
    }
    let inode = match format::read_inode(device, geom, dir) {
        Ok(i) => i,
        Err(e) => {
            report.issues.push(FsckIssue::Structural {
                ino: dir,
                detail: e.to_string(),
            });
            return;
        }
    };

    let (recs, batch_residue) =
        match committed_records(device, geom, &inode, dir, Some(report)) {
            Ok(v) => v,
            Err(e) => {
                report.issues.push(FsckIssue::Structural {
                    ino: dir,
                    detail: e,
                });
                return;
            }
        };
    if batch_residue {
        report.issues.push(FsckIssue::BatchResidue {
            dir,
            watermark: inode.batch_seq,
        });
    }

    let live = resolve_live(recs, dir, Some(report));

    if inode.size != live.len() as u64 {
        report.issues.push(FsckIssue::SizeMismatch {
            dir,
            recorded: inode.size,
            actual: live.len() as u64,
        });
    }

    let mut children: Vec<(String, u64)> = live.iter().map(|(n, i)| (n.clone(), *i)).collect();
    children.sort();
    for (name, child) in children {
        let cinode = match format::read_inode(device, geom, child) {
            Ok(i) => i,
            Err(e) => {
                report.issues.push(FsckIssue::Structural {
                    ino: child,
                    detail: e.to_string(),
                });
                continue;
            }
        };
        if !cinode.is_committed(child) {
            // The §4.2 partially persisted inode.
            report
                .issues
                .push(FsckIssue::DanglingDentry { dir, child, name });
            continue;
        }
        let ctype = match cinode.inode_type() {
            Some(t) => t,
            None => {
                report.issues.push(FsckIssue::BadType {
                    ino: child,
                    raw: cinode.itype,
                });
                continue;
            }
        };
        if !visited.insert(child) {
            // Reached twice: two parents or a cycle.
            report
                .issues
                .push(FsckIssue::MultiplyReachable { ino: child });
            continue;
        }
        if ctype == InodeType::Directory {
            walk_dir(device, geom, child, visited, report, depth + 1);
        }
    }
}

/// A directory's committed record: `(name, seq, ino, deleted)`.
type DirRec = (String, u64, u64, bool);

/// Collect a directory's committed dentry records below its group-
/// durability watermark (DESIGN.md §8: records above the watermark belong
/// to the commit batch open at the crash and are uncommitted by
/// definition). Deleted records are included — batched unlinks and renames
/// append *negative* records, so liveness is decided afterwards by
/// [`resolve_live`]. The second return is whether any record sat above the
/// watermark. With `report`, §4.2 payload and target violations are
/// reported; without it they are skipped silently (recovery erases them).
fn committed_records(
    device: &Arc<PmemDevice>,
    geom: &Geometry,
    inode: &format::RawInode,
    dir: u64,
    mut report: Option<&mut FsckReport>,
) -> Result<(Vec<DirRec>, bool), String> {
    let wm = inode.batch_seq;
    let mut batch_residue = false;
    let mut recs: Vec<DirRec> = Vec::new();
    format::walk_dir_log(device, geom, inode, |d| {
        if d.marker == 0 {
            return;
        }
        if wm != 0 && d.seq > wm {
            batch_residue = true;
            return;
        }
        let torn = d.marker as usize > format::DENTRY_NAME_CAP || d.name_has_nul();
        let name = if torn { None } else { d.name_str() };
        let name = match name {
            Some(n) => n.to_string(),
            None => {
                // Tombstoned records were never payload-checked; a torn
                // name only violates §4.2 on a record claiming to be live.
                if !d.deleted {
                    if let Some(r) = report.as_deref_mut() {
                        r.issues.push(FsckIssue::PartialDentry {
                            dir,
                            offset: d.offset,
                        });
                    }
                }
                return;
            }
        };
        if d.ino == 0 || d.ino > geom.max_inodes {
            if !d.deleted {
                if let Some(r) = report.as_deref_mut() {
                    r.issues.push(FsckIssue::DanglingDentry {
                        dir,
                        child: d.ino,
                        name,
                    });
                }
            }
            return;
        }
        recs.push((name, d.seq, d.ino, d.deleted));
    })?;
    Ok((recs, batch_residue))
}

/// Per-name and per-inode sequence resolution over a directory's committed
/// records — exactly the rule recovery applies. A live record below the
/// per-name winner is benign only when a newer negative record for the
/// same inode explicitly killed it; any other live loser is a genuine
/// duplicate. An inode live under two names (same-directory rename
/// residue) keeps the newer name. Returns the live `name → ino` map; with
/// `report`, residue and duplicates are reported against `dir`.
fn resolve_live(
    recs: Vec<DirRec>,
    dir: u64,
    mut report: Option<&mut FsckReport>,
) -> HashMap<String, u64> {
    // Per-name record tuples: (seq, ino, deleted).
    type NameRecs = Vec<(u64, u64, bool)>;
    let mut by_name: HashMap<String, NameRecs> = HashMap::new();
    for (name, seq, ino, deleted) in recs {
        by_name.entry(name).or_default().push((seq, ino, deleted));
    }
    let mut live: HashMap<String, u64> = HashMap::new();
    let mut live_seq: HashMap<String, u64> = HashMap::new();
    let mut resolved: Vec<(String, NameRecs)> = by_name.into_iter().collect();
    resolved.sort(); // deterministic issue order across identical images
    for (name, mut v) in resolved {
        v.sort_unstable();
        let &(winner_seq, winner_ino, winner_deleted) = v.last().expect("non-empty");
        for &(seq, ino, deleted) in &v[..v.len() - 1] {
            if deleted {
                continue;
            }
            let Some(r) = report.as_deref_mut() else {
                continue;
            };
            let killed = v.iter().any(|&(s2, i2, d2)| s2 > seq && d2 && i2 == ino);
            if killed {
                r.issues.push(FsckIssue::UnlinkResidue {
                    dir,
                    name: name.clone(),
                });
            } else {
                r.issues.push(FsckIssue::DuplicateName {
                    dir,
                    name: name.clone(),
                });
            }
        }
        if !winner_deleted {
            live.insert(name.clone(), winner_ino);
            live_seq.insert(name, winner_seq);
        }
    }

    // Same inode live under two names: same-directory rename residue (the
    // old name's tombstone did not persist). Keep the newer record, as
    // recovery does.
    let mut by_ino: HashMap<u64, (String, u64)> = HashMap::new();
    let mut sorted_live: Vec<(String, u64)> = live.iter().map(|(n, i)| (n.clone(), *i)).collect();
    sorted_live.sort();
    for (name, ino) in sorted_live {
        let seq = live_seq[&name];
        match by_ino.get(&ino) {
            Some((old_name, old_seq)) => {
                if let Some(r) = report.as_deref_mut() {
                    r.issues.push(FsckIssue::RenameResidue { dir, ino });
                }
                if seq > *old_seq {
                    live.remove(old_name);
                    by_ino.insert(ino, (name, seq));
                } else {
                    live.remove(&name);
                }
            }
            None => {
                by_ino.insert(ino, (name, seq));
            }
        }
    }
    live
}

// ---- logical snapshots and fingerprints --------------------------------

/// One live entry in a [`logical_snapshot`]: the namespace-visible identity
/// of a file or directory, with **no physical placement** in it. Two images
/// that recover to the same user-visible state produce the same entries
/// even when their inodes landed on different pages or allocator shards.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LogicalEntry {
    /// Absolute path from the root (e.g. `/d/f0`).
    pub path: String,
    /// Inode type.
    pub itype: InodeType,
    /// Owning tenant uid.
    pub uid: u32,
    /// File size in bytes; 0 for directories (their logical content is the
    /// set of entries under them, which appear as their own paths — the
    /// stored size field may be benignly stale after a crash).
    pub size: u64,
    /// FNV-1a hash of the file content in logical block order; 0 for
    /// directories.
    pub content_hash: u64,
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv1a(h: &mut u64, bytes: &[u8]) {
    for &b in bytes {
        *h ^= b as u64;
        *h = h.wrapping_mul(FNV_PRIME);
    }
}

/// Hash a regular file's content in logical block order.
///
/// The block → page map is built from the direct, indirect and
/// double-indirect pointers first, then the extent tree on top (a
/// committed extent run supersedes the legacy mapping for its blocks, and
/// later records supersede earlier ones, matching the read path). Only the
/// mapping's *data* enters the hash — page numbers never do, so the hash
/// is stable across allocator shard counts and physical placement.
fn file_content_hash(
    device: &Arc<PmemDevice>,
    geom: &Geometry,
    inode: &format::RawInode,
) -> u64 {
    let in_range = |p: u64| p >= geom.data_start_page && p < geom.total_pages;
    let read_ptr = |page: u64, slot: u64| {
        device
            .read_u64(geom.page_offset(page) + slot * 8)
            .unwrap_or(0)
    };
    let mut map: HashMap<u64, u64> = HashMap::new(); // file block → page
    for (i, &p) in inode.direct.iter().enumerate() {
        if in_range(p) {
            map.insert(i as u64, p);
        }
    }
    if in_range(inode.indirect) {
        for i in 0..format::PTRS_PER_PAGE {
            let p = read_ptr(inode.indirect, i);
            if in_range(p) {
                map.insert(format::NDIRECT as u64 + i, p);
            }
        }
    }
    if in_range(inode.dindirect) {
        let l1_base = format::NDIRECT as u64 + format::PTRS_PER_PAGE;
        for i in 0..format::PTRS_PER_PAGE {
            let l1 = read_ptr(inode.dindirect, i);
            if !in_range(l1) {
                continue;
            }
            for j in 0..format::PTRS_PER_PAGE {
                let p = read_ptr(l1, j);
                if in_range(p) {
                    map.insert(l1_base + i * format::PTRS_PER_PAGE + j, p);
                }
            }
        }
    }
    let _ = format::walk_extents(device, geom, inode, |_| {}, |e| {
        for k in 0..e.len {
            map.insert(e.file_block + k, e.page + k);
        }
    });

    let page_size = pmem::PAGE_SIZE as u64;
    let nblocks = inode.size.div_ceil(page_size);
    let mut h = FNV_OFFSET;
    let mut buf = vec![0u8; pmem::PAGE_SIZE];
    for block in 0..nblocks {
        let take = (inode.size - block * page_size).min(page_size) as usize;
        let data = match map.get(&block) {
            Some(&page) if device.read(geom.page_offset(page), &mut buf).is_ok() => &buf[..take],
            _ => &vec![0u8; take][..], // unmapped hole reads as zeros
        };
        fnv1a(&mut h, &block.to_le_bytes());
        fnv1a(&mut h, data);
    }
    h
}

/// Walk the namespace from the root and return every live, committed entry
/// sorted by path — the **logical** state of the image, independent of
/// physical placement, allocator shard count, and benign crash residue
/// (orphans, stale sizes, batch residue, unpersisted tombstones), all of
/// which recovery discards. Liveness uses the same per-name sequence
/// resolution as [`fsck`]; nothing is reported.
pub fn logical_snapshot(
    device: &Arc<PmemDevice>,
    geom: &Geometry,
) -> Result<Vec<LogicalEntry>, String> {
    let mut out = Vec::new();
    let mut visited: HashSet<u64> = HashSet::new();
    visited.insert(ROOT_INO);
    let mut stack: Vec<(u64, String)> = vec![(ROOT_INO, String::new())];
    while let Some((dir, prefix)) = stack.pop() {
        let inode = match format::read_inode(device, geom, dir) {
            Ok(i) => i,
            Err(e) => return Err(e.to_string()),
        };
        let (recs, _) = committed_records(device, geom, &inode, dir, None)?;
        let mut children: Vec<(String, u64)> =
            resolve_live(recs, dir, None).into_iter().collect();
        children.sort();
        for (name, child) in children {
            let cinode = match format::read_inode(device, geom, child) {
                Ok(i) => i,
                Err(e) => return Err(e.to_string()),
            };
            if !cinode.is_committed(child) {
                continue; // dangling target: recovery drops the name
            }
            let Some(ctype) = cinode.inode_type() else {
                continue;
            };
            let path = format!("{prefix}/{name}");
            let (size, content_hash) = match ctype {
                InodeType::Regular => (
                    cinode.size,
                    file_content_hash(device, geom, &cinode),
                ),
                InodeType::Directory => (0, 0),
            };
            out.push(LogicalEntry {
                path: path.clone(),
                itype: ctype,
                uid: cinode.uid,
                size,
                content_hash,
            });
            if ctype == InodeType::Directory && visited.insert(child) {
                stack.push((child, path));
            }
        }
    }
    out.sort_by(|a, b| a.path.cmp(&b.path));
    Ok(out)
}

/// Collapse [`logical_snapshot`] into one stable `u64` — the crash-state
/// fingerprint `crashmc` and the `schedmc` fuzzer use as a coverage
/// signal. Equal logical states hash equal by construction; physical
/// placement differences (e.g. recovering under a different
/// `ARCKFS_ALLOC_SHARDS` than the image crashed at) never enter the hash.
pub fn logical_fingerprint(device: &Arc<PmemDevice>) -> Result<u64, String> {
    let geom = format::read_superblock(device)?;
    let snap = logical_snapshot(device, &geom)?;
    let mut h = FNV_OFFSET;
    for e in &snap {
        fnv1a(&mut h, e.path.as_bytes());
        fnv1a(&mut h, &[0xFF]);
        fnv1a(&mut h, &e.itype.to_raw().to_le_bytes());
        fnv1a(&mut h, &e.uid.to_le_bytes());
        fnv1a(&mut h, &e.size.to_le_bytes());
        fnv1a(&mut h, &e.content_hash.to_le_bytes());
    }
    Ok(h)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::controller::{Kernel, KernelConfig};

    fn fresh_device() -> Arc<PmemDevice> {
        let dev = PmemDevice::new(32 << 20);
        let geom = Geometry::new(32 << 20, 256);
        Kernel::format(dev.clone(), geom, KernelConfig::arckfs_plus()).unwrap();
        dev
    }

    #[test]
    fn fresh_fs_is_consistent() {
        let dev = fresh_device();
        let report = fsck(&dev).unwrap();
        assert!(report.is_consistent(), "issues: {:?}", report.issues);
        assert_eq!(report.reachable, 1);
    }

    #[test]
    fn garbage_device_reports_structural() {
        let dev = PmemDevice::new(1 << 20);
        assert!(fsck(&dev).is_err(), "no superblock must be an error");
    }

    /// Durably set or clear one page's bitmap bit by hand.
    fn poke_bit(dev: &Arc<PmemDevice>, geom: &Geometry, page: u64, value: bool) {
        let idx = page - geom.data_start_page;
        let off = geom.bitmap_offset() + idx / 8;
        let b = dev.read_u8(off).unwrap();
        let b = if value {
            b | 1 << (idx % 8)
        } else {
            b & !(1 << (idx % 8))
        };
        dev.write_u8(off, b).unwrap();
        dev.persist_all();
    }

    #[test]
    fn leaked_page_is_benign_and_shard_attributed() {
        let dev = fresh_device();
        let geom = format::read_superblock(&dev).unwrap();
        let page = geom.data_start_page + 3;
        poke_bit(&dev, &geom, page, true);
        let report = fsck(&dev).unwrap();
        assert!(report.is_consistent(), "{:?}", report.issues);
        let leak = report
            .issues
            .iter()
            .find_map(|i| match i {
                FsckIssue::PageLeak { shard, page: p } => Some((*shard, *p)),
                _ => None,
            })
            .expect("leak reported");
        assert_eq!(leak.1, page);
        let ranges = pmem::ShardedPageAllocator::shard_ranges_for(
            geom.data_start_page,
            geom.data_pages(),
            pmem::default_alloc_shards(),
        );
        let (first, count) = ranges[leak.0];
        assert!(page >= first && page < first + count, "wrong shard");
    }

    #[test]
    fn reachable_page_with_clear_bit_is_fatal() {
        let dev = fresh_device();
        let geom = format::read_superblock(&dev).unwrap();
        // Link a dir-log page into the root but leave its bit clear.
        let page = geom.data_start_page + 5;
        let base = geom.inode_offset(crate::ROOT_INO);
        dev.write_u64(base + format::I_DIRECT, page).unwrap();
        dev.persist_all();
        let report = fsck(&dev).unwrap();
        assert!(!report.is_consistent());
        assert!(report.issues.iter().any(|i| matches!(
            i,
            FsckIssue::PageNotAllocated { page: p, ino: 1 } if *p == page
        )));
    }

    #[test]
    fn doubly_referenced_page_is_fatal() {
        let dev = fresh_device();
        let geom = format::read_superblock(&dev).unwrap();
        let page = geom.data_start_page + 7;
        poke_bit(&dev, &geom, page, true);
        // Root's dentry page holds one entry naming file 7; both the root
        // log and file 7 then claim `page`.
        let dirp = geom.data_start_page + 8;
        poke_bit(&dev, &geom, dirp, true);
        let root_base = geom.inode_offset(crate::ROOT_INO);
        dev.write_u64(root_base + format::I_DIRECT, dirp).unwrap();
        dev.write_u64(root_base + format::I_SIZE, 1).unwrap();
        let rec = geom.page_offset(dirp) + format::DIRPAGE_FIRST_DENTRY;
        dev.write_u64(rec + format::D_INO, 7).unwrap();
        dev.write_u64(rec + format::D_SEQ, 1).unwrap();
        dev.write(rec + format::D_NAME, b"f").unwrap();
        dev.write_u16(rec + format::D_MARKER, 1).unwrap();
        let f_base = geom.inode_offset(7);
        dev.write_u32(f_base + format::I_TYPE, InodeType::Regular.to_raw())
            .unwrap();
        dev.write_u64(f_base + format::I_DIRECT, page).unwrap();
        dev.write_u64(f_base, 7).unwrap();
        // A second committed file 8 claiming the same page, orphaned (no
        // dentry): orphans are excluded from the double-use check.
        let g_base = geom.inode_offset(8);
        dev.write_u32(g_base + format::I_TYPE, InodeType::Regular.to_raw())
            .unwrap();
        dev.write_u64(g_base + format::I_DIRECT, page).unwrap();
        dev.write_u64(g_base, 8).unwrap();
        dev.persist_all();
        let report = fsck(&dev).unwrap();
        assert!(report.is_consistent(), "{:?}", report.issues);

        // Now link file 8 into the root as well: both owners reachable.
        let rec2 = rec + format::DENTRY_SIZE;
        dev.write_u64(rec2 + format::D_INO, 8).unwrap();
        dev.write_u64(rec2 + format::D_SEQ, 2).unwrap();
        dev.write(rec2 + format::D_NAME, b"g").unwrap();
        dev.write_u16(rec2 + format::D_MARKER, 1).unwrap();
        dev.write_u64(root_base + format::I_SIZE, 2).unwrap();
        dev.persist_all();
        let report = fsck(&dev).unwrap();
        assert!(!report.is_consistent());
        assert!(report.issues.iter().any(|i| matches!(
            i,
            FsckIssue::PageDoubleUse { page: p, .. } if *p == page
        )));
    }

    #[test]
    fn repair_clears_leaked_bits() {
        let dev = fresh_device();
        let geom = format::read_superblock(&dev).unwrap();
        let page = geom.data_start_page + 11;
        poke_bit(&dev, &geom, page, true);
        let after = repair(&dev).unwrap();
        assert!(
            !after
                .issues
                .iter()
                .any(|i| matches!(i, FsckIssue::PageLeak { .. })),
            "{:?}",
            after.issues
        );
        let idx = page - geom.data_start_page;
        let b = dev.read_u8(geom.bitmap_offset() + idx / 8).unwrap();
        assert_eq!(b & (1 << (idx % 8)), 0, "bit cleared");
    }

    #[test]
    fn orphan_inode_is_benign() {
        let dev = fresh_device();
        let geom = format::read_superblock(&dev).unwrap();
        // Hand-commit inode 7 with no dentry referencing it.
        let base = geom.inode_offset(7);
        dev.write_u32(base + 8, InodeType::Regular.to_raw())
            .unwrap();
        dev.write_u64(base, 7).unwrap();
        dev.persist_all();
        let report = fsck(&dev).unwrap();
        assert!(report.is_consistent());
        assert!(report
            .issues
            .iter()
            .any(|i| matches!(i, FsckIssue::OrphanInode { ino: 7 })));
    }

    #[test]
    fn tenant_usage_groups_by_uid_and_dedupes_pages() {
        let dev = fresh_device();
        let geom = format::read_superblock(&dev).unwrap();
        // Tenant 100 commits inode 7 with one page; tenant 200 commits
        // inodes 8 and 9 where inode 9 re-references 8's page — the page
        // charge must not double-count (first committed owner wins).
        let p1 = geom.data_start_page + 3;
        let p2 = geom.data_start_page + 4;
        poke_bit(&dev, &geom, p1, true);
        poke_bit(&dev, &geom, p2, true);
        let commit = |ino: u64, uid: u32, page: u64| {
            let base = geom.inode_offset(ino);
            dev.write_u32(base + format::I_TYPE, InodeType::Regular.to_raw())
                .unwrap();
            dev.write_u32(base + format::I_UID, uid).unwrap();
            dev.write_u64(base + format::I_DIRECT, page).unwrap();
            dev.write_u64(base, ino).unwrap();
        };
        commit(7, 100, p1);
        commit(8, 200, p2);
        commit(9, 200, p2);
        // Inode 10 is staged but never committed: invisible to the durable
        // derivation no matter what its uid field says.
        let base = geom.inode_offset(10);
        dev.write_u32(base + format::I_TYPE, InodeType::Regular.to_raw())
            .unwrap();
        dev.write_u32(base + format::I_UID, 100).unwrap();
        dev.persist_all();

        let usage = derive_tenant_usage(&dev, &geom).unwrap();
        assert_eq!(
            usage.charges[&100],
            TenantCharges { pages: 1, inodes: 1 }
        );
        assert_eq!(
            usage.charges[&200],
            TenantCharges { pages: 1, inodes: 2 }
        );
        assert_eq!(usage.page_owner[&p1], 100);
        assert_eq!(usage.page_owner[&p2], 200);
        assert_eq!(usage.ino_owner[&7], 100);
        assert_eq!(usage.ino_owner[&9], 200);
        assert!(!usage.ino_owner.contains_key(&10), "uncommitted inode charged");
    }

    #[test]
    fn tenant_leaks_attribute_residue_to_the_holder() {
        let dev = fresh_device();
        let geom = format::read_superblock(&dev).unwrap();
        let p1 = geom.data_start_page + 3;
        poke_bit(&dev, &geom, p1, true);
        let base = geom.inode_offset(7);
        dev.write_u32(base + format::I_TYPE, InodeType::Regular.to_raw())
            .unwrap();
        dev.write_u32(base + format::I_UID, 100).unwrap();
        dev.write_u64(base + format::I_DIRECT, p1).unwrap();
        dev.write_u64(base, 7).unwrap();
        dev.persist_all();

        let usage = derive_tenant_usage(&dev, &geom).unwrap();
        // Tenant 100 holds 3 volatile page charges but only 1 durable page:
        // 2 pages of benign grant residue. Tenant 200 matches exactly.
        let leaks = attribute_tenant_leaks(
            vfs::QuotaKind::Pages,
            &[(100, 3), (200, 0)],
            &usage,
        );
        assert_eq!(leaks.len(), 1);
        assert_eq!(leaks[0].tenant, 100);
        assert_eq!(leaks[0].leaked(), 2);
        assert_eq!(leaks[0].durable, 1);
        // Inode residue attributes the same way.
        let leaks = attribute_tenant_leaks(vfs::QuotaKind::Inodes, &[(100, 1)], &usage);
        assert!(leaks.is_empty(), "{leaks:?}");
    }
}

#[allow(clippy::items_after_test_module)]
/// Actively repair benign crash residue on a device (mutating it):
///
/// * tombstone the stale record of each same-directory rename residue
///   (the newer sequence number wins, as recovery resolves it),
/// * rewrite stale directory size fields to the live entry count,
/// * clear the commit marker of orphaned inodes so their numbers return
///   to circulation at the next remount.
///
/// Fatal issues are *not* repaired (they indicate a §4.2-class bug, not
/// residue); they are returned untouched in the report. Returns the
/// post-repair report, which contains no benign findings.
pub fn repair(device: &Arc<PmemDevice>) -> Result<FsckReport, String> {
    let geom = format::read_superblock(device)?;
    let before = fsck_with_geometry(device, &geom);

    for issue in &before.issues {
        match issue {
            FsckIssue::RenameResidue { dir, ino } => {
                // Find every live dentry for `ino` in `dir`; keep the one
                // with the highest seq, tombstone the rest.
                let inode = format::read_inode(device, &geom, *dir).map_err(|e| e.to_string())?;
                let mut records: Vec<(u64, u64)> = Vec::new(); // (seq, offset)
                format::walk_dir_log(device, &geom, &inode, |d| {
                    if d.is_live() && d.ino == *ino {
                        records.push((d.seq, d.offset));
                    }
                })?;
                records.sort_unstable();
                for (_, off) in records.iter().take(records.len().saturating_sub(1)) {
                    device
                        .write(*off + format::D_DELETED, &[1])
                        .map_err(|e| e.to_string())?;
                    device
                        .persist(*off + format::D_DELETED, 1)
                        .map_err(|e| e.to_string())?;
                }
            }
            FsckIssue::SizeMismatch { dir, actual, .. } => {
                let base = geom.inode_offset(*dir);
                device
                    .write_u64(base + format::I_SIZE, *actual)
                    .map_err(|e| e.to_string())?;
                device
                    .persist(base + format::I_SIZE, 8)
                    .map_err(|e| e.to_string())?;
            }
            FsckIssue::OrphanInode { ino } => {
                let base = geom.inode_offset(*ino);
                device.write_u64(base, 0).map_err(|e| e.to_string())?;
                device.persist(base, 8).map_err(|e| e.to_string())?;
            }
            FsckIssue::BatchResidue { dir, watermark } => {
                // Roll the open batch back: erase every gated record's
                // marker, persist, then clear the watermark — in that
                // order, so a crash mid-repair never exposes a cleared
                // watermark with a gated record still looking committed.
                let inode = format::read_inode(device, &geom, *dir).map_err(|e| e.to_string())?;
                let mut gated: Vec<u64> = Vec::new();
                format::walk_dir_log(device, &geom, &inode, |d| {
                    if d.marker != 0 && d.seq > *watermark {
                        gated.push(d.offset);
                    }
                })?;
                for off in gated {
                    device
                        .write(off + format::D_MARKER, &[0, 0])
                        .map_err(|e| e.to_string())?;
                    device
                        .persist(off + format::D_MARKER, 2)
                        .map_err(|e| e.to_string())?;
                }
                let base = geom.inode_offset(*dir);
                device
                    .write_u64(base + format::I_BATCH_SEQ, 0)
                    .map_err(|e| e.to_string())?;
                device
                    .persist(base + format::I_BATCH_SEQ, 8)
                    .map_err(|e| e.to_string())?;
            }
            FsckIssue::UnlinkResidue { dir, name } => {
                // Persist the deferred tombstone: mark deleted every live
                // record for `name` that a newer negative record for the
                // same inode supersedes.
                let inode = format::read_inode(device, &geom, *dir).map_err(|e| e.to_string())?;
                let wm = inode.batch_seq;
                let mut recs: Vec<(u64, u64, bool, u64)> = Vec::new(); // (seq, ino, deleted, off)
                format::walk_dir_log(device, &geom, &inode, |d| {
                    if d.marker == 0 || (wm != 0 && d.seq > wm) {
                        return;
                    }
                    if d.name_str() == Some(name.as_str()) {
                        recs.push((d.seq, d.ino, d.deleted, d.offset));
                    }
                })?;
                for &(seq, ino, deleted, off) in &recs {
                    if deleted {
                        continue;
                    }
                    let killed = recs.iter().any(|&(s2, i2, d2, _)| s2 > seq && d2 && i2 == ino);
                    if killed {
                        device
                            .write(off + format::D_DELETED, &[1])
                            .map_err(|e| e.to_string())?;
                        device
                            .persist(off + format::D_DELETED, 1)
                            .map_err(|e| e.to_string())?;
                    }
                }
            }
            FsckIssue::PageLeak { page, .. } => {
                // Clear the leaked bit so the allocator's next recovery
                // returns the page to circulation. Repair is offline and
                // single-threaded: a plain read-modify-write is safe here.
                let idx = page - geom.data_start_page;
                let off = geom.bitmap_offset() + idx / 8;
                let b = device.read_u8(off).map_err(|e| e.to_string())?;
                device
                    .write_u8(off, b & !(1 << (idx % 8)))
                    .map_err(|e| e.to_string())?;
                device.persist(off, 1).map_err(|e| e.to_string())?;
            }
            _ => {} // fatal issues are reported, not repaired
        }
    }

    // Repairing rename residue / sizes can cascade (a size recount after a
    // tombstone): run once more for a clean post-state.
    let mut after = fsck_with_geometry(device, &geom);
    for issue in &after.issues {
        if let FsckIssue::SizeMismatch { dir, actual, .. } = issue {
            let base = geom.inode_offset(*dir);
            device
                .write_u64(base + format::I_SIZE, *actual)
                .map_err(|e| e.to_string())?;
            device
                .persist(base + format::I_SIZE, 8)
                .map_err(|e| e.to_string())?;
        }
    }
    after = fsck_with_geometry(device, &geom);
    Ok(after)
}
