//! The in-kernel access controller.
//!
//! The controller is the trusted entry point of the TRIO architecture
//! (§2.1, Figure 1): it grants LibFSes access to inodes at inode
//! granularity (steps ①–②), unmaps them on release (⑤) and forwards the
//! released core state to the integrity verifier (⑥–⑧). It also owns the
//! persistent page allocator (LibFSes receive page and inode-number
//! *extents* so that steady-state operation needs no kernel crossing), the
//! trust groups of §5.4, and the global rename lease of §4.6.
//!
//! Every public method is a modelled syscall: it bumps the syscall counter
//! and, when configured, charges a fixed kernel-crossing cost.

use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use parking_lot::Mutex;

use pmem::{default_alloc_shards, LatencyModel, Mapping, MappingRegistry, PmemDevice};
use pmem::ShardedPageAllocator;
use vfs::{FsError, FsResult, QuotaKind};

use crate::format::{self, Geometry, InodeType};
use crate::lease::{LeaseGrant, RenameLease};
use crate::provider::{self, QuotaProvider, ResourceProvider};
use crate::shadow::{ShadowEntry, ShadowTable};
use crate::verifier::{self, Snapshot};
use crate::ROOT_INO;

/// Identifier of a registered LibFS (one per application).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct LibFsId(pub u64);

/// Kernel-side configuration: which ArckFS+ fixes the trusted side applies,
/// plus cost knobs.
#[derive(Debug, Clone)]
pub struct KernelConfig {
    /// §4.1: verifier distinguishes rename from deletion via the shadow
    /// parent pointer, and applies the relocation checks.
    pub rename_aware_verifier: bool,
    /// §4.6: the global cross-directory rename lease exists and directory
    /// relocations must hold it.
    pub require_rename_lease: bool,
    /// Lease timeout (bounds a malicious holder).
    pub lease_timeout: Duration,
    /// Injected cost per kernel crossing (0 in tests; benchmarks model a
    /// syscall at a few hundred ns).
    pub syscall_cost: Duration,
    /// Shard count for the page allocator and the inode-number pool.
    /// `0` means "auto": `ARCKFS_ALLOC_SHARDS` if set, else
    /// `min(cores, 8)` (see [`pmem::default_alloc_shards`]).
    pub alloc_shards: usize,
    /// Per-tenant data-page quota. `None` (the presets' default) leaves the
    /// allocator bare — single-tenant callers pay nothing for tenancy. When
    /// set, the page provider is wrapped in a [`QuotaProvider`] keyed by
    /// LibFS uid and grants fail with [`FsError::QuotaExceeded`] once a
    /// tenant's charge reaches the limit.
    pub page_quota: Option<u64>,
    /// Per-tenant inode-number quota (same wrapping rule as
    /// [`KernelConfig::page_quota`], over the volatile inode pool).
    pub ino_quota: Option<u64>,
}

impl KernelConfig {
    /// The kernel as the original ArckFS artifact assumed it (no §4.1
    /// parent pointer, no §4.6 lease).
    pub fn arckfs() -> Self {
        KernelConfig {
            rename_aware_verifier: false,
            require_rename_lease: false,
            lease_timeout: Duration::from_secs(2),
            syscall_cost: Duration::ZERO,
            alloc_shards: 0,
            page_quota: None,
            ino_quota: None,
        }
    }

    /// The ArckFS+ kernel (all trusted-side patches on).
    pub fn arckfs_plus() -> Self {
        KernelConfig {
            rename_aware_verifier: true,
            require_rename_lease: true,
            lease_timeout: Duration::from_secs(2),
            syscall_cost: Duration::ZERO,
            alloc_shards: 0,
            page_quota: None,
            ino_quota: None,
        }
    }

    /// Set the injected kernel-crossing cost.
    pub fn with_syscall_cost(mut self, cost: Duration) -> Self {
        self.syscall_cost = cost;
        self
    }

    /// Pin the allocator shard count (`0` restores auto selection).
    pub fn with_alloc_shards(mut self, shards: usize) -> Self {
        self.alloc_shards = shards;
        self
    }

    /// Set a uniform per-tenant data-page quota (`None` disables).
    pub fn with_page_quota(mut self, quota: Option<u64>) -> Self {
        self.page_quota = quota;
        self
    }

    /// Set a uniform per-tenant inode quota (`None` disables).
    pub fn with_ino_quota(mut self, quota: Option<u64>) -> Self {
        self.ino_quota = quota;
        self
    }

    /// The shard count this configuration resolves to.
    pub fn effective_alloc_shards(&self) -> usize {
        if self.alloc_shards == 0 {
            default_alloc_shards()
        } else {
            self.alloc_shards
        }
    }
}

/// Counters exported by the kernel.
#[derive(Debug, Default)]
pub struct KernelStats {
    /// Kernel crossings.
    pub syscalls: AtomicU64,
    /// Successful inode acquisitions.
    pub acquires: AtomicU64,
    /// Inode releases.
    pub releases: AtomicU64,
    /// Commits (verify while retaining ownership).
    pub commits: AtomicU64,
    /// Involuntary releases.
    pub forced_releases: AtomicU64,
    /// Verifications performed.
    pub verifications: AtomicU64,
    /// Verifications that failed.
    pub verify_failures: AtomicU64,
    /// Rollbacks applied after failed verification.
    pub rollbacks: AtomicU64,
    /// Verifications skipped thanks to a trust group.
    pub trust_skips: AtomicU64,
}

impl KernelStats {
    /// Plain-data snapshot `(syscalls, verifications, verify_failures)` plus
    /// the rest, for the harness.
    pub fn snapshot(&self) -> KernelStatsSnapshot {
        KernelStatsSnapshot {
            syscalls: self.syscalls.load(Ordering::Relaxed),
            acquires: self.acquires.load(Ordering::Relaxed),
            releases: self.releases.load(Ordering::Relaxed),
            commits: self.commits.load(Ordering::Relaxed),
            forced_releases: self.forced_releases.load(Ordering::Relaxed),
            verifications: self.verifications.load(Ordering::Relaxed),
            verify_failures: self.verify_failures.load(Ordering::Relaxed),
            rollbacks: self.rollbacks.load(Ordering::Relaxed),
            trust_skips: self.trust_skips.load(Ordering::Relaxed),
        }
    }
}

/// Plain-data snapshot of [`KernelStats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
#[allow(missing_docs)]
pub struct KernelStatsSnapshot {
    pub syscalls: u64,
    pub acquires: u64,
    pub releases: u64,
    pub commits: u64,
    pub forced_releases: u64,
    pub verifications: u64,
    pub verify_failures: u64,
    pub rollbacks: u64,
    pub trust_skips: u64,
}

/// What a LibFS receives when the kernel grants it an inode (Figure 1 ②):
/// a generation-tagged mapping of the core state. Dropping the grant does
/// nothing; the LibFS must `release` through the kernel.
#[derive(Debug, Clone)]
pub struct InodeGrant {
    /// The granted inode.
    pub ino: u64,
    /// Mapping for direct userspace access to the inode's core state. The
    /// kernel invalidates it on (voluntary or involuntary) release.
    pub mapping: Mapping,
}

pub(crate) struct LibFsInfo {
    pub uid: u32,
    pub group: Option<u64>,
    /// LibFS-wide registry backing writes to freshly allocated (not yet
    /// committed) inodes and pages; lives until unregister.
    pub registry: Arc<MappingRegistry>,
}

/// Kernel-internal mutable state (held under one lock; the kernel is a
/// crossing point, not a fast path — the whole point of TRIO is that the
/// LibFS rarely enters it).
pub(crate) struct KState {
    pub shadow: ShadowTable,
    /// ino → set of owning LibFSes (more than one only within a trust
    /// group).
    pub owners: HashMap<u64, HashSet<u64>>,
    /// Acquire-time snapshots keyed by (ino, libfs).
    pub snapshots: HashMap<(u64, u64), Snapshot>,
    /// Mapping registries for live grants, keyed by (ino, libfs).
    pub registries: HashMap<(u64, u64), Arc<MappingRegistry>>,
    pub libfs: HashMap<u64, LibFsInfo>,
    /// Inodes released inside a trust group without verification:
    /// ino → (group id, snapshot for the eventual boundary verification).
    pub dirty_in_group: HashMap<u64, (u64, Snapshot)>,
    next_group: u64,
}

/// The TRIO kernel: access controller + verifier + allocator + lease.
pub struct Kernel {
    device: Arc<PmemDevice>,
    geom: Geometry,
    config: KernelConfig,
    /// Data-page provider: a [`ShardedPageAllocator`] over the durable
    /// bitmap region.
    allocator: Box<dyn ResourceProvider>,
    /// Inode-number provider: the same engine over a volatile scratch
    /// bitmap (the durable truth for inode occupancy is the inode table's
    /// commit markers, re-scanned by [`Kernel::recover`]).
    inos: Box<dyn ResourceProvider>,
    lease: RenameLease,
    pub(crate) state: Mutex<KState>,
    stats: KernelStats,
    next_libfs: AtomicU64,
}

impl std::fmt::Debug for Kernel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Kernel")
            .field("geom", &self.geom)
            .field("config", &self.config)
            .finish()
    }
}

/// Wrap a provider in a [`QuotaProvider`] when a quota is configured;
/// otherwise hand it back bare — tenancy is strictly pay-for-what-you-use.
fn wrap_quota(
    inner: Box<dyn ResourceProvider>,
    kind: QuotaKind,
    quota: Option<u64>,
) -> Box<dyn ResourceProvider> {
    match quota {
        Some(q) => Box::new(QuotaProvider::new(inner, kind, q)),
        None => inner,
    }
}

impl Kernel {
    /// Format a fresh file system on `device` and start the kernel: write
    /// the superblock, initialize the allocator, and create the root
    /// directory inode.
    pub fn format(
        device: Arc<PmemDevice>,
        geom: Geometry,
        config: KernelConfig,
    ) -> FsResult<Arc<Kernel>> {
        format::write_superblock(&device, &geom).map_err(fs_err)?;
        let shards = config.effective_alloc_shards();
        let allocator = ShardedPageAllocator::format_with_shards(
            device.clone(),
            geom.bitmap_offset(),
            geom.data_start_page,
            geom.data_pages(),
            shards,
        )
        .map_err(fs_err)?;

        // Zero the inode and shadow tables (markers must read as invalid).
        let it_off = geom.inode_table_page * pmem::PAGE_SIZE as u64;
        let it_len = (geom.inode_table_pages + geom.shadow_pages) as usize * pmem::PAGE_SIZE;
        device.zero(it_off, it_len).map_err(fs_err)?;
        device.persist_all();

        // Root inode: committed directory, 4 log tails, world-writable.
        let base = geom.inode_offset(ROOT_INO);
        device
            .write_u32(base + format::I_TYPE, InodeType::Directory.to_raw())
            .map_err(fs_err)?;
        device
            .write_u32(base + format::I_MODE, format::mode::RW_ALL)
            .map_err(fs_err)?;
        device.write_u32(base + format::I_UID, 0).map_err(fs_err)?;
        device
            .write_u32(base + format::I_NTAILS, 4)
            .map_err(fs_err)?;
        device
            .write_u64(base + format::I_NLINK, 2)
            .map_err(fs_err)?;
        device
            .persist(base, format::INODE_SIZE as usize)
            .map_err(fs_err)?;
        device
            .write_u64(base + format::I_MARKER, ROOT_INO)
            .map_err(fs_err)?;
        device.persist(base, 8).map_err(fs_err)?;

        let mut shadow = ShadowTable::new(device.clone(), geom);
        shadow
            .upsert(ShadowEntry {
                ino: ROOT_INO,
                itype: InodeType::Directory,
                mode: format::mode::RW_ALL,
                uid: 0,
                parent: 0,
            })
            .map_err(fs_err)?;

        let inos = provider::volatile_pool(2, geom.max_inodes - 1, shards);
        let lease = RenameLease::new(config.lease_timeout);
        let allocator = wrap_quota(Box::new(allocator), QuotaKind::Pages, config.page_quota);
        let inos = wrap_quota(Box::new(inos), QuotaKind::Inodes, config.ino_quota);
        Ok(Arc::new(Kernel {
            device,
            geom,
            config,
            allocator,
            inos,
            lease,
            state: Mutex::new(KState {
                shadow,
                owners: HashMap::new(),
                snapshots: HashMap::new(),
                registries: HashMap::new(),
                libfs: HashMap::new(),
                dirty_in_group: HashMap::new(),
                next_group: 1,
            }),
            stats: KernelStats::default(),
            next_libfs: AtomicU64::new(1),
        }))
    }

    /// Remount an existing device (after a clean shutdown or a crash):
    /// validate the superblock, recover the allocator and shadow table,
    /// rebuild the kernel's ground truth (shadow entries and verified
    /// children) by walking the core state from the root — the core state
    /// *is* the ground truth (§2.2) — and rebuild the free-inode list from
    /// the inode table's commit markers.
    pub fn recover(device: Arc<PmemDevice>, config: KernelConfig) -> FsResult<Arc<Kernel>> {
        let geom = format::read_superblock(&device).map_err(FsError::Corrupted)?;
        let shards = config.effective_alloc_shards();
        let allocator = ShardedPageAllocator::recover_with_shards(
            device.clone(),
            geom.bitmap_offset(),
            geom.data_start_page,
            geom.data_pages(),
            shards,
        )
        .map_err(fs_err)?;

        // Reclaim leaked pages: bits that are durably set but not reachable
        // from any committed inode. These are extents that were granted to
        // a LibFS (allocate-then-link: the bit persists before the page is
        // linked) and lost to the crash before linking — exactly the benign
        // `PageLeak` class fsck reports. Clearing them here keeps leaks
        // from accumulating across crash/recover cycles.
        let referenced = crate::fsck::referenced_pages(&device, &geom).map_err(fs_err)?;
        let mut leaked = Vec::new();
        for page in geom.data_start_page..geom.data_start_page + geom.data_pages() {
            if !referenced.contains(&page) && allocator.is_allocated(page).map_err(fs_err)? {
                leaked.push(page);
            }
        }
        if !leaked.is_empty() {
            allocator.free_extent(&leaked).map_err(fs_err)?;
        }
        let mut shadow = ShadowTable::recover(device.clone(), geom).map_err(fs_err)?;

        // Walk the tree from the root, registering every reachable,
        // well-formed inode. Crash residue (partially persisted dentries,
        // dangling targets) is skipped — recovery's equivalent of fsck's
        // repair.
        let mut queue = vec![crate::ROOT_INO];
        let mut seen = std::collections::HashSet::from([crate::ROOT_INO]);
        while let Some(dir) = queue.pop() {
            let inode = match format::read_inode(&device, &geom, dir) {
                Ok(i) if i.is_committed(dir) => i,
                _ => continue,
            };
            if inode.inode_type() != Some(InodeType::Directory) {
                continue;
            }
            if shadow.get(dir).is_none() {
                shadow
                    .upsert(ShadowEntry {
                        ino: dir,
                        itype: InodeType::Directory,
                        mode: inode.mode,
                        uid: inode.uid,
                        parent: 0,
                    })
                    .map_err(fs_err)?;
            }
            let mut children = HashMap::new();
            // Per name, keep the committed record with the highest sequence
            // number — deletions included. With the group-durability batch
            // layer (DESIGN.md §8) an unlink is a *negative* log record and
            // the superseded positive is only tombstoned in place after the
            // batch fences, so recovery must resolve names by sequence
            // rather than trust `is_live` alone. A nonzero batch watermark
            // marks every record above it as an unfenced batch member:
            // crash residue, skipped wholesale.
            let wm = inode.batch_seq;
            let mut best: std::collections::BTreeMap<String, (u64, bool, u64)> =
                std::collections::BTreeMap::new();
            let walk = format::walk_dir_log(&device, &geom, &inode, |d| {
                if d.marker == 0 || d.name_has_nul() {
                    return;
                }
                if wm != 0 && d.seq > wm {
                    return;
                }
                let name = match d.name_str() {
                    Some(n) => n.to_string(),
                    None => return,
                };
                if d.ino == 0 || d.ino > geom.max_inodes {
                    return;
                }
                match best.get(&name) {
                    Some(&(seq, _, _)) if seq >= d.seq => {}
                    _ => {
                        best.insert(name, (d.seq, d.deleted, d.ino));
                    }
                }
            });
            if walk.is_err() {
                continue;
            }
            let mut pending: Vec<(String, u64, InodeType, u32, u32)> = Vec::new();
            for (name, (_, deleted, ino)) in best {
                if deleted {
                    continue;
                }
                if let Ok(child) = format::read_inode(&device, &geom, ino) {
                    if child.is_committed(ino) {
                        if let Some(t) = child.inode_type() {
                            pending.push((name, ino, t, child.mode, child.uid));
                        }
                    }
                }
            }
            for (name, child, itype, mode_bits, uid) in pending {
                if !seen.insert(child) {
                    continue; // cycle/duplicate residue: first parent wins
                }
                children.insert(name, child);
                shadow
                    .upsert(ShadowEntry {
                        ino: child,
                        itype,
                        mode: mode_bits,
                        uid,
                        parent: dir,
                    })
                    .map_err(fs_err)?;
                if itype == InodeType::Directory {
                    queue.push(child);
                }
            }
            shadow.set_children(dir, children);
        }
        // Rebuild the inode-number pool from the table's commit markers —
        // the durable truth for inode occupancy.
        let mut used = vec![false; geom.max_inodes as usize + 1];
        for ino in 2..=geom.max_inodes {
            let marker = device.read_u64(geom.inode_offset(ino)).map_err(fs_err)?;
            used[ino as usize] = marker == ino;
        }
        let inos =
            provider::volatile_pool_from_used(2, geom.max_inodes - 1, shards, |ino| {
                used[ino as usize]
            })
            .map_err(fs_err)?;
        let lease = RenameLease::new(config.lease_timeout);
        // With quotas on, reseed the charge tables from commit markers —
        // the quota durability rule (DESIGN.md §12): a tenant's post-crash
        // charge is exactly what its committed inodes pin. Volatile grant
        // residue was reclaimed above and is never re-charged.
        let (allocator, inos): (Box<dyn ResourceProvider>, Box<dyn ResourceProvider>) =
            if config.page_quota.is_some() || config.ino_quota.is_some() {
                let usage =
                    crate::fsck::derive_tenant_usage(&device, &geom).map_err(FsError::Corrupted)?;
                let alloc: Box<dyn ResourceProvider> = match config.page_quota {
                    Some(q) => {
                        let qp = QuotaProvider::new(Box::new(allocator), QuotaKind::Pages, q);
                        qp.seed(
                            usage.charges.iter().map(|(&t, c)| (t, c.pages)).collect(),
                            usage.page_owner.clone(),
                        );
                        Box::new(qp)
                    }
                    None => Box::new(allocator),
                };
                let ino_p: Box<dyn ResourceProvider> = match config.ino_quota {
                    Some(q) => {
                        let qp = QuotaProvider::new(Box::new(inos), QuotaKind::Inodes, q);
                        qp.seed(
                            usage.charges.iter().map(|(&t, c)| (t, c.inodes)).collect(),
                            usage.ino_owner,
                        );
                        Box::new(qp)
                    }
                    None => Box::new(inos),
                };
                (alloc, ino_p)
            } else {
                (Box::new(allocator), Box::new(inos))
            };
        Ok(Arc::new(Kernel {
            device,
            geom,
            config,
            allocator,
            inos,
            lease,
            state: Mutex::new(KState {
                shadow,
                owners: HashMap::new(),
                snapshots: HashMap::new(),
                registries: HashMap::new(),
                libfs: HashMap::new(),
                dirty_in_group: HashMap::new(),
                next_group: 1,
            }),
            stats: KernelStats::default(),
            next_libfs: AtomicU64::new(1),
        }))
    }

    fn syscall(&self) {
        self.stats.syscalls.fetch_add(1, Ordering::Relaxed);
        if !self.config.syscall_cost.is_zero() {
            LatencyModel::spin(self.config.syscall_cost);
        }
    }

    /// The shared device.
    pub fn device(&self) -> &Arc<PmemDevice> {
        &self.device
    }

    /// The on-PM geometry.
    pub fn geometry(&self) -> &Geometry {
        &self.geom
    }

    /// Kernel configuration.
    pub fn config(&self) -> &KernelConfig {
        &self.config
    }

    /// Kernel counters.
    pub fn stats(&self) -> &KernelStats {
        &self.stats
    }

    /// Register a LibFS running as `uid`. Returns its id and its LibFS-wide
    /// mapping (for writes to freshly granted, not-yet-committed resources).
    pub fn register_libfs(&self, uid: u32) -> (LibFsId, Mapping) {
        self.syscall();
        let id = LibFsId(self.next_libfs.fetch_add(1, Ordering::Relaxed));
        let registry = Arc::new(MappingRegistry::new());
        let mapping = Mapping::new(self.device.clone(), registry.clone(), 0, self.device.len());
        self.state.lock().libfs.insert(
            id.0,
            LibFsInfo {
                uid,
                group: None,
                registry,
            },
        );
        (id, mapping)
    }

    /// Unregister a LibFS: involuntarily release everything it still owns
    /// and invalidate its LibFS-wide mapping.
    pub fn unregister_libfs(&self, libfs: LibFsId) -> FsResult<()> {
        self.syscall();
        let owned: Vec<u64> = {
            let st = self.state.lock();
            st.owners
                .iter()
                .filter(|(_, s)| s.contains(&libfs.0))
                .map(|(&ino, _)| ino)
                .collect()
        };
        for ino in owned {
            let _ = self.force_release(libfs, ino);
        }
        let mut st = self.state.lock();
        if let Some(info) = st.libfs.remove(&libfs.0) {
            info.registry.unmap();
        }
        Ok(())
    }

    fn uid_of(st: &KState, libfs: LibFsId) -> FsResult<u32> {
        st.libfs
            .get(&libfs.0)
            .map(|i| i.uid)
            .ok_or_else(|| FsError::Internal(format!("unregistered LibFS {libfs:?}")))
    }

    fn group_of(st: &KState, libfs: LibFsId) -> Option<u64> {
        st.libfs.get(&libfs.0).and_then(|i| i.group)
    }

    /// Grant `n` unused inode numbers to the LibFS. The LibFS initializes
    /// them directly in userspace; the kernel learns of them when a parent
    /// directory referencing them is verified.
    pub fn grant_inodes(&self, libfs: LibFsId, n: usize) -> FsResult<Vec<u64>> {
        self.syscall();
        let tenant = self.tenant_of(libfs)?;
        // Take the numbers from the sharded pool *before* entering the
        // kernel lock — allocation contention stays on the pool's shard
        // locks, not the global kernel state.
        let inos = self
            .inos
            .alloc_extent_for(tenant, n)
            .map_err(provider::tenant_err)?;
        let mut st = self.state.lock();
        // The grantee owns the fresh inodes: it may commit/release them
        // (subject to Rule (1) — they verify only once connected).
        for &ino in &inos {
            st.owners.entry(ino).or_default().insert(libfs.0);
        }
        Ok(inos)
    }

    /// As [`Kernel::grant_inodes`], but also establish a mapping for each
    /// granted inode in the same kernel crossing — the LibFS initializes
    /// fresh inodes through these, and release invalidates them like any
    /// acquire-time mapping.
    pub fn grant_inodes_mapped(&self, libfs: LibFsId, n: usize) -> FsResult<Vec<(u64, Mapping)>> {
        self.syscall();
        let tenant = self.tenant_of(libfs)?;
        let inos = self
            .inos
            .alloc_extent_for(tenant, n)
            .map_err(provider::tenant_err)?;
        let mut st = self.state.lock();
        let mut out = Vec::with_capacity(n);
        for ino in inos {
            st.owners.entry(ino).or_default().insert(libfs.0);
            let registry = Arc::new(MappingRegistry::new());
            st.registries.insert((ino, libfs.0), registry.clone());
            out.push((
                ino,
                Mapping::new(self.device.clone(), registry, 0, self.device.len()),
            ));
        }
        Ok(out)
    }

    /// Return unused inode numbers: ownership is dropped, any grant
    /// mapping is invalidated, and the numbers re-enter circulation.
    pub fn return_inodes(&self, libfs: LibFsId, inos: Vec<u64>) {
        self.syscall();
        {
            let mut st = self.state.lock();
            for &ino in &inos {
                if let Some(owners) = st.owners.get_mut(&ino) {
                    owners.remove(&libfs.0);
                }
                if let Some(reg) = st.registries.remove(&(ino, libfs.0)) {
                    reg.unmap();
                }
                st.snapshots.remove(&(ino, libfs.0));
            }
        }
        // A misbehaving LibFS returning numbers it never held must not
        // poison the pool; the error (double free) is dropped, matching
        // the old free-list's silent acceptance.
        let tenant = self.tenant_of(libfs).unwrap_or(0);
        let _ = self.inos.free_extent_for(tenant, &inos);
    }

    /// The quota tenant a LibFS allocates as: its uid. The uid is durable
    /// (inodes carry it), so post-crash charge re-derivation attributes to
    /// the same identity a live grant charges.
    fn tenant_of(&self, libfs: LibFsId) -> FsResult<u64> {
        let st = self.state.lock();
        Self::uid_of(&st, libfs).map(u64::from)
    }

    /// Grant a page extent to the LibFS, charged to its tenant (uid). With
    /// a quota configured the grant may be *clamped* to the tenant's
    /// remaining budget — fewer pages than asked, never zero — so batched
    /// refills degrade gracefully near the limit.
    pub fn grant_pages(&self, libfs: LibFsId, n: usize) -> FsResult<Vec<u64>> {
        self.syscall();
        let tenant = self.tenant_of(libfs)?;
        self.allocator
            .alloc_extent_for(tenant, n)
            .map_err(provider::tenant_err)
    }

    /// Return a page extent, uncharging the tenant that was charged for it.
    pub fn return_pages(&self, libfs: LibFsId, pages: &[u64]) -> FsResult<()> {
        self.syscall();
        let tenant = self.tenant_of(libfs).unwrap_or(0);
        self.allocator
            .free_extent_for(tenant, pages)
            .map_err(provider::tenant_err)
    }

    /// The page provider (exposed for fsck cross-checks and the obs
    /// `alloc` block).
    pub fn allocator(&self) -> &dyn ResourceProvider {
        self.allocator.as_ref()
    }

    /// The inode-number provider (counters feed the obs `alloc` block).
    pub fn ino_provider(&self) -> &dyn ResourceProvider {
        self.inos.as_ref()
    }

    /// Map a freshly granted (not yet committed) inode for `libfs`. The
    /// LibFS calls this right after initializing an inode it created; the
    /// mapping is invalidated on release like any acquire-time mapping.
    pub fn fresh_mapping(&self, libfs: LibFsId, ino: u64) -> Mapping {
        self.syscall();
        let mut st = self.state.lock();
        let registry = Arc::new(MappingRegistry::new());
        st.registries.insert((ino, libfs.0), registry.clone());
        Mapping::new(self.device.clone(), registry, 0, self.device.len())
    }

    /// Acquire `ino` for `libfs` (Figure 1 ①–②): permission check, ownership
    /// grant, mapping. Fails with [`FsError::NotOwner`] when another LibFS
    /// outside the caller's trust group holds the inode.
    pub fn acquire(&self, libfs: LibFsId, ino: u64) -> FsResult<InodeGrant> {
        self.syscall();
        let mut st = self.state.lock();
        let uid = Self::uid_of(&st, libfs)?;
        let group = Self::group_of(&st, libfs);

        let entry = st.shadow.get(ino).cloned().ok_or(FsError::NotFound)?;
        if !format::mode::can_read(entry.mode, entry.uid, uid) {
            return Err(FsError::PermissionDenied);
        }

        // Deferred trust-group verification: if the inode was last released
        // unverified inside a group the caller is not part of, verify now.
        if let Some((dirty_group, _)) = st.dirty_in_group.get(&ino) {
            if group != Some(*dirty_group) {
                let (_, snap) = st.dirty_in_group.remove(&ino).expect("checked above");
                self.stats.verifications.fetch_add(1, Ordering::Relaxed);
                if let Err(e) = verifier::verify_and_apply(
                    &self.device,
                    &self.geom,
                    &self.config,
                    &self.lease,
                    &mut st,
                    libfs,
                    ino,
                    &snap,
                ) {
                    self.stats.verify_failures.fetch_add(1, Ordering::Relaxed);
                    self.stats.rollbacks.fetch_add(1, Ordering::Relaxed);
                    verifier::rollback(&self.device, &self.geom, &snap);
                    return Err(e);
                }
            }
        }

        // Ownership: free, already ours, or co-owned within our group.
        let owners: Vec<u64> = st
            .owners
            .get(&ino)
            .map(|s| s.iter().copied().collect())
            .unwrap_or_default();
        if !owners.is_empty() && !owners.contains(&libfs.0) {
            let all_in_group = group.is_some()
                && owners
                    .iter()
                    .all(|o| st.libfs.get(o).and_then(|i| i.group) == group);
            if !all_in_group {
                return Err(FsError::NotOwner { ino });
            }
            self.stats.trust_skips.fetch_add(1, Ordering::Relaxed);
        }
        st.owners.entry(ino).or_default().insert(libfs.0);

        let registry = Arc::new(MappingRegistry::new());
        st.registries.insert((ino, libfs.0), registry.clone());
        let snap = verifier::take_snapshot(&self.device, &self.geom, &st.shadow, ino)
            .map_err(FsError::Corrupted)?;
        // Charge the mapping-setup cost: installing page-table entries for
        // the inode's data is proportional to its size (this is what makes
        // sharing a large file expensive in Table 4).
        let size = format::read_inode(&self.device, &self.geom, ino)
            .map(|i| i.size)
            .unwrap_or(0);
        if entry.itype == InodeType::Regular && !self.config.syscall_cost.is_zero() {
            let pages = size.div_ceil(pmem::PAGE_SIZE as u64);
            LatencyModel::spin(Duration::from_nanos(10).saturating_mul(pages as u32));
        }
        st.snapshots.insert((ino, libfs.0), snap);

        self.stats.acquires.fetch_add(1, Ordering::Relaxed);
        let mapping = Mapping::new(self.device.clone(), registry, 0, self.device.len());
        Ok(InodeGrant { ino, mapping })
    }

    /// Voluntarily release `ino` (Figure 1 ⑤–⑧): unmap, verify, and on
    /// failure roll the inode back to its acquire-time state.
    pub fn release(&self, libfs: LibFsId, ino: u64) -> FsResult<()> {
        let _span = obs::span(obs::OpKind::Release, self.device.stats());
        self.syscall();
        self.release_inner(libfs, ino, false)
    }

    /// Involuntary release: the kernel revokes the grant (lease timeout,
    /// unregister, or a misbehaving LibFS). The LibFS may crash afterwards
    /// (§4.3 explicitly tolerates that); the kernel side stays consistent.
    pub fn force_release(&self, libfs: LibFsId, ino: u64) -> FsResult<()> {
        self.syscall();
        self.stats.forced_releases.fetch_add(1, Ordering::Relaxed);
        self.release_inner(libfs, ino, true)
    }

    fn release_inner(&self, libfs: LibFsId, ino: u64, _forced: bool) -> FsResult<()> {
        let mut st = self.state.lock();
        let owners = st.owners.get(&ino).cloned().unwrap_or_default();
        if !owners.contains(&libfs.0) {
            return Err(FsError::NotOwner { ino });
        }

        // Unmap first: after release returns, the LibFS must not touch the
        // core state (the §4.3 bug is the LibFS's failure to synchronize
        // its own threads around this point).
        if let Some(reg) = st.registries.remove(&(ino, libfs.0)) {
            reg.unmap();
        }
        // Inodes granted fresh (never acquired) have no snapshot: their
        // initial state is "nonexistent", which Snapshot::empty encodes.
        let snap = st
            .snapshots
            .remove(&(ino, libfs.0))
            .unwrap_or_else(|| Snapshot::empty(ino));
        st.owners
            .get_mut(&ino)
            .expect("owner checked")
            .remove(&libfs.0);

        let group = Self::group_of(&st, libfs);
        let others_in_group = !st.owners.get(&ino).map(|s| s.is_empty()).unwrap_or(true);
        if let Some(g) = group {
            if others_in_group {
                // Intra-group release: defer verification to the group
                // boundary (§5.4 trust groups): record the earliest
                // snapshot.
                self.stats.trust_skips.fetch_add(1, Ordering::Relaxed);
                st.dirty_in_group.entry(ino).or_insert((g, snap));
                self.stats.releases.fetch_add(1, Ordering::Relaxed);
                return Ok(());
            }
        }
        if group.is_some() {
            // Last member out: verify against the earliest group snapshot
            // if one exists, else this snapshot.
            let snap = match st.dirty_in_group.remove(&ino) {
                Some((_, s)) => s,
                None => snap,
            };
            return self.verify_now(&mut st, libfs, ino, snap);
        }
        self.verify_now(&mut st, libfs, ino, snap)?;
        self.stats.releases.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    fn verify_now(
        &self,
        st: &mut KState,
        libfs: LibFsId,
        ino: u64,
        snap: Snapshot,
    ) -> FsResult<()> {
        self.stats.verifications.fetch_add(1, Ordering::Relaxed);
        match verifier::verify_and_apply(
            &self.device,
            &self.geom,
            &self.config,
            &self.lease,
            st,
            libfs,
            ino,
            &snap,
        ) {
            Ok(()) => Ok(()),
            Err(e) => {
                self.stats.verify_failures.fetch_add(1, Ordering::Relaxed);
                self.stats.rollbacks.fetch_add(1, Ordering::Relaxed);
                verifier::rollback(&self.device, &self.geom, &snap);
                Err(e)
            }
        }
    }

    /// Commit `ino` (TRIO §4.3): verify while **retaining** ownership and
    /// the mapping. On success the acquire-time snapshot is refreshed; on
    /// failure the inode is rolled back (ownership retained).
    pub fn commit(&self, libfs: LibFsId, ino: u64) -> FsResult<()> {
        let _span = obs::span(obs::OpKind::Commit, self.device.stats());
        self.syscall();
        let mut st = self.state.lock();
        if !st
            .owners
            .get(&ino)
            .map(|s| s.contains(&libfs.0))
            .unwrap_or(false)
        {
            return Err(FsError::NotOwner { ino });
        }
        let snap = st
            .snapshots
            .get(&(ino, libfs.0))
            .cloned()
            .unwrap_or_else(|| Snapshot::empty(ino));
        self.stats.commits.fetch_add(1, Ordering::Relaxed);
        self.verify_now(&mut st, libfs, ino, snap)?;
        // Refresh the baseline for the next verification.
        let fresh = verifier::take_snapshot(&self.device, &self.geom, &st.shadow, ino)
            .map_err(FsError::Corrupted)?;
        st.snapshots.insert((ino, libfs.0), fresh);
        Ok(())
    }

    /// Does `libfs` currently own `ino`?
    pub fn owns(&self, libfs: LibFsId, ino: u64) -> bool {
        self.state
            .lock()
            .owners
            .get(&ino)
            .map(|s| s.contains(&libfs.0))
            .unwrap_or(false)
    }

    /// The shadow entry for `ino`, if the kernel has verified it.
    pub fn shadow_entry(&self, ino: u64) -> Option<ShadowEntry> {
        self.state.lock().shadow.get(ino).cloned()
    }

    /// The kernel's verified children baseline for directory `ino`.
    pub fn verified_children(&self, ino: u64) -> HashMap<String, u64> {
        self.state.lock().shadow.children_of(ino)
    }

    // ---- trust groups (§5.4) ----------------------------------------------

    /// Create a trust group containing `members`; intra-group ownership
    /// transfers skip verification.
    pub fn create_trust_group(&self, members: &[LibFsId]) -> FsResult<u64> {
        self.syscall();
        let mut st = self.state.lock();
        let gid = st.next_group;
        st.next_group += 1;
        for m in members {
            match st.libfs.get_mut(&m.0) {
                Some(info) => info.group = Some(gid),
                None => return Err(FsError::Internal(format!("unregistered LibFS {m:?}"))),
            }
        }
        Ok(gid)
    }

    // ---- global rename lease (§4.6) ----------------------------------------

    /// Acquire the global cross-directory rename lease. Errors with
    /// [`FsError::Busy`] while another LibFS holds an unexpired lease, and
    /// with [`FsError::InvalidArgument`] when the kernel was configured
    /// without the §4.6 patch.
    pub fn rename_lease_acquire(&self, libfs: LibFsId) -> FsResult<u64> {
        self.syscall();
        if !self.config.require_rename_lease {
            return Err(FsError::InvalidArgument(
                "this kernel has no global rename lease (§4.6 patch disabled)".into(),
            ));
        }
        match self.lease.try_acquire(libfs.0) {
            LeaseGrant::Granted { token } => Ok(token),
            LeaseGrant::Busy { .. } => Err(FsError::Busy),
        }
    }

    /// Blocking variant of [`Kernel::rename_lease_acquire`].
    pub fn rename_lease_acquire_blocking(&self, libfs: LibFsId) -> FsResult<u64> {
        self.syscall();
        if !self.config.require_rename_lease {
            return Err(FsError::InvalidArgument(
                "this kernel has no global rename lease (§4.6 patch disabled)".into(),
            ));
        }
        Ok(self.lease.acquire_blocking(libfs.0))
    }

    /// Release the global rename lease.
    pub fn rename_lease_release(&self, libfs: LibFsId, token: u64) -> FsResult<()> {
        self.syscall();
        self.lease.release(libfs.0, token);
        Ok(())
    }

    /// Does `libfs` hold a live rename lease? (Verifier check (3) of §4.1.)
    pub fn holds_rename_lease(&self, libfs: LibFsId) -> bool {
        self.lease.held_by(libfs.0)
    }
}

fn fs_err(e: impl std::fmt::Display) -> FsError {
    FsError::Internal(e.to_string())
}

#[cfg(test)]
mod acquire_profile_tests {
    use super::*;
    use std::time::Instant;

    #[test]
    #[ignore = "developer profiling helper; run with --ignored --nocapture"]
    fn profile_acquire_release() {
        let dev_len = 256 << 20;
        let device = pmem::PmemDevice::with_latency(dev_len, pmem::LatencyModel::optane());
        let geom = Geometry::for_device(dev_len);
        let kernel = Kernel::format(
            device,
            geom,
            KernelConfig::arckfs_plus().with_syscall_cost(Duration::from_nanos(400)),
        )
        .unwrap();
        let (a, _m) = kernel.register_libfs(0);
        // Acquire+release the root many times.
        let t = Instant::now();
        for _ in 0..1000 {
            kernel.acquire(a, ROOT_INO).unwrap();
            kernel.release(a, ROOT_INO).unwrap();
        }
        println!("root acquire+release: {:?}/op", t.elapsed() / 1000);
        let g = kernel.acquire(a, ROOT_INO).unwrap();
        let t = Instant::now();
        for _ in 0..1000 {
            let snap = crate::verifier::take_snapshot(
                kernel.device(),
                kernel.geometry(),
                &kernel.state.lock().shadow,
                ROOT_INO,
            )
            .unwrap();
            std::hint::black_box(&snap);
        }
        println!("take_snapshot(root): {:?}/op", t.elapsed() / 1000);
        drop(g);
    }
}
