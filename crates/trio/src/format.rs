//! On-PM core-state layout.
//!
//! ArckFS keeps a *minimal* core state in NVM: a superblock, an inode table,
//! a shadow inode table, an allocator bitmap, and pages (file data pages and
//! directory dentry-log pages). This module defines that layout and typed
//! accessors over a [`PmemDevice`]. Both the kernel substrate (verifier,
//! fsck) and the LibFS use these definitions; the LibFS accesses the same
//! bytes through its granted mappings.
//!
//! ## Inode (256 bytes)
//!
//! | offset | field | notes |
//! |---|---|---|
//! | 0 | `marker: u64` | commit marker — equals the inode number when valid, 0 when free/uncommitted (the paper's §4.2 protocol) |
//! | 8 | `itype: u32` | 1 = regular, 2 = directory |
//! | 12 | `mode: u32` | permission bits ([`mode`]) |
//! | 16 | `uid: u32` | owner |
//! | 20 | `ntails: u32` | directories: number of log tails |
//! | 24 | `size: u64` | file length in bytes; directories: live entry count |
//! | 32 | `nlink: u64` | |
//! | 40 | `seq: u64` | monotone per-inode sequence (dentry ordering) |
//! | 48 | `direct[16]: u64` | files: direct data pages; dirs: tail head pages |
//! | 176 | `indirect: u64` | single-indirect page (512 pointers) |
//! | 184 | `dindirect: u64` | double-indirect page |
//! | 192 | `batch_seq: u64` | directories: group-durability watermark — 0 when quiescent; a batch's open sequence `S0` while a commit batch is in flight (records with `seq > S0` are uncommitted until the batch fences; see DESIGN.md §8) |
//! | 200 | `extent_root: u64` | regular files: head of the extent-leaf chain; 0 = legacy direct/indirect mapping (DESIGN.md §11) |
//!
//! ## Extent leaf (one page)
//!
//! | offset | field | notes |
//! |---|---|---|
//! | 0 | `next: u64` | next leaf page (0 = end of chain) |
//! | 8 | reserved | |
//! | 16 | records | [`EXTENTS_PER_PAGE`] × 24-byte records |
//!
//! Each 24-byte record is `(file_block_start: u64, page_start: u64,
//! len: u64)` mapping `len` consecutive file blocks to `len` consecutive
//! data pages. **`len` is the commit marker**: a record is written
//! start/page first (persist), then `len` (persist), so a torn insert
//! leaves `len == 0` — an invisible hole skipped by every reader, whose
//! already-allocated pages surface as benign `PageLeak` fsck residue.
//!
//! ## Dentry (128 bytes, two cache lines)
//!
//! | offset | field | notes |
//! |---|---|---|
//! | 0 | `marker: u16` | name length; **the commit marker** — 0 = slot not committed. (The TRIO artifact uses `dir->name_len` the same way.) |
//! | 2 | `deleted: u8` | 1 = tombstoned by unlink/rename |
//! | 8 | `ino: u64` | target inode |
//! | 16 | `seq: u64` | per-directory sequence for replay ordering |
//! | 24 | `name[104]` | spans into the second cache line for names > 40 bytes |
//!
//! A dentry whose name is longer than 40 bytes spans both cache lines of its
//! record, which is precisely the geometry that makes the §4.2 missing-fence
//! bug observable: the first line (with the marker) can persist while the
//! second (with the name tail) does not.

use std::sync::Arc;

use pmem::{PmemDevice, PmemResult, PAGE_SIZE};

/// Inode record size in bytes.
pub const INODE_SIZE: u64 = 256;
/// Inodes per page of the inode table.
pub const INODES_PER_PAGE: u64 = PAGE_SIZE as u64 / INODE_SIZE;

/// Shadow-inode record size in bytes (see [`crate::shadow`]).
pub const SHADOW_SIZE: u64 = 64;
/// Shadow inodes per page.
pub const SHADOWS_PER_PAGE: u64 = PAGE_SIZE as u64 / SHADOW_SIZE;

/// Dentry record size in bytes.
pub const DENTRY_SIZE: u64 = 128;
/// Maximum name bytes a dentry can hold.
pub const DENTRY_NAME_CAP: usize = 104;
/// Offset of the first dentry in a directory-log page (the page header
/// occupies one full record so dentries stay cache-line aligned).
pub const DIRPAGE_FIRST_DENTRY: u64 = 128;
/// Dentries per directory-log page.
pub const DENTRIES_PER_PAGE: u64 = (PAGE_SIZE as u64 - DIRPAGE_FIRST_DENTRY) / DENTRY_SIZE;

/// Number of direct page pointers in an inode.
pub const NDIRECT: usize = 16;
/// Page pointers per indirect page.
pub const PTRS_PER_PAGE: u64 = PAGE_SIZE as u64 / 8;

// Inode field offsets.
/// Inode field offset.
pub const I_MARKER: u64 = 0;
/// Inode field offset.
pub const I_TYPE: u64 = 8;
/// Inode field offset.
pub const I_MODE: u64 = 12;
/// Inode field offset.
pub const I_UID: u64 = 16;
/// Inode field offset.
pub const I_NTAILS: u64 = 20;
/// Inode field offset.
pub const I_SIZE: u64 = 24;
/// Inode field offset.
pub const I_NLINK: u64 = 32;
/// Inode field offset.
pub const I_SEQ: u64 = 40;
/// Inode field offset.
pub const I_DIRECT: u64 = 48;
/// Inode field offset.
pub const I_INDIRECT: u64 = 176;
/// Inode field offset.
pub const I_DINDIRECT: u64 = 184;
/// Inode field offset: the group-durability watermark (own cache line —
/// `192 = 3 × 64` — so persisting it never drags neighbouring fields).
pub const I_BATCH_SEQ: u64 = 192;
/// Inode field offset: extent-tree root (regular files; 0 = legacy
/// direct/indirect block mapping).
pub const I_EXTENT_ROOT: u64 = 200;

// Extent-leaf page layout.
/// Extent-leaf page header: next-leaf pointer.
pub const EP_NEXT: u64 = 0;
/// Offset of the first extent record in a leaf page.
pub const EXTENT_FIRST_REC: u64 = 16;
/// Extent record size in bytes.
pub const EXTENT_REC_SIZE: u64 = 24;
/// Extent record field offset: first file block covered.
pub const E_FILE_BLOCK: u64 = 0;
/// Extent record field offset: first data page of the run.
pub const E_PAGE: u64 = 8;
/// Extent record field offset: run length in blocks — the commit marker
/// (0 = uncommitted/hole).
pub const E_LEN: u64 = 16;
/// Extent records per leaf page.
pub const EXTENTS_PER_PAGE: u64 = (PAGE_SIZE as u64 - EXTENT_FIRST_REC) / EXTENT_REC_SIZE;

// Dentry field offsets.
/// Dentry field offset.
pub const D_MARKER: u64 = 0;
/// Dentry field offset.
pub const D_DELETED: u64 = 2;
/// Dentry field offset.
pub const D_INO: u64 = 8;
/// Dentry field offset.
pub const D_SEQ: u64 = 16;
/// Dentry field offset.
pub const D_NAME: u64 = 24;

// Directory-log page header.
/// Directory-log page header: next-page pointer.
pub const DP_NEXT: u64 = 0;

/// Superblock magic value ("ARCKFSPM").
pub const SUPER_MAGIC: u64 = 0x4152_434b_4653_504d;

// Superblock field offsets (page 0).
/// Superblock field offset.
pub const SB_MAGIC: u64 = 0;
/// Superblock field offset.
pub const SB_PAGES: u64 = 8;
/// Superblock field offset.
pub const SB_MAX_INODES: u64 = 16;

/// Permission bits stored in the inode `mode` field.
pub mod mode {
    /// Owner may write.
    pub const OWNER_W: u32 = 0o200;
    /// Owner may read.
    pub const OWNER_R: u32 = 0o400;
    /// Others may write.
    pub const OTHER_W: u32 = 0o002;
    /// Others may read.
    pub const OTHER_R: u32 = 0o004;
    /// rw for owner, rw for others (the benchmarks' default).
    pub const RW_ALL: u32 = OWNER_R | OWNER_W | OTHER_R | OTHER_W;
    /// rw owner, read-only others (the §3.1 attack scenario's dir3/file1).
    pub const RW_OWNER_RO_OTHER: u32 = OWNER_R | OWNER_W | OTHER_R;

    /// May `uid` write to an inode owned by `owner` with `mode`?
    pub fn can_write(mode: u32, owner: u32, uid: u32) -> bool {
        if uid == owner {
            mode & OWNER_W != 0
        } else {
            mode & OTHER_W != 0
        }
    }

    /// May `uid` read an inode owned by `owner` with `mode`?
    pub fn can_read(mode: u32, owner: u32, uid: u32) -> bool {
        if uid == owner {
            mode & OWNER_R != 0
        } else {
            mode & OTHER_R != 0
        }
    }
}

/// Inode type tag.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum InodeType {
    /// Regular file.
    Regular,
    /// Directory.
    Directory,
}

impl InodeType {
    /// On-PM encoding.
    pub fn to_raw(self) -> u32 {
        match self {
            InodeType::Regular => 1,
            InodeType::Directory => 2,
        }
    }

    /// Decode; `None` for unknown tags (corruption).
    pub fn from_raw(v: u32) -> Option<Self> {
        match v {
            1 => Some(InodeType::Regular),
            2 => Some(InodeType::Directory),
            _ => None,
        }
    }
}

/// Where everything lives on the device.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Geometry {
    /// Total pages on the device.
    pub total_pages: u64,
    /// Maximum number of inodes.
    pub max_inodes: u64,
    /// First page of the inode table.
    pub inode_table_page: u64,
    /// Pages in the inode table.
    pub inode_table_pages: u64,
    /// First page of the shadow table.
    pub shadow_page: u64,
    /// Pages in the shadow table.
    pub shadow_pages: u64,
    /// First page of the allocator bitmap.
    pub bitmap_page: u64,
    /// Pages in the allocator bitmap.
    pub bitmap_pages: u64,
    /// First allocatable data page.
    pub data_start_page: u64,
}

impl Geometry {
    /// Compute the layout for a device of `device_len` bytes with room for
    /// `max_inodes` inodes.
    pub fn new(device_len: usize, max_inodes: u64) -> Geometry {
        let total_pages = (device_len / PAGE_SIZE) as u64;
        let inode_table_page = 1;
        let inode_table_pages = max_inodes.div_ceil(INODES_PER_PAGE);
        let shadow_page = inode_table_page + inode_table_pages;
        let shadow_pages = max_inodes.div_ceil(SHADOWS_PER_PAGE);
        let bitmap_page = shadow_page + shadow_pages;
        // One bit per page of the whole device (slight overcount; simple).
        let bitmap_pages = total_pages.div_ceil(8 * PAGE_SIZE as u64).max(1);
        let data_start_page = bitmap_page + bitmap_pages;
        assert!(
            data_start_page < total_pages,
            "device too small: {device_len} bytes for {max_inodes} inodes"
        );
        Geometry {
            total_pages,
            max_inodes,
            inode_table_page,
            inode_table_pages,
            shadow_page,
            shadow_pages,
            bitmap_page,
            bitmap_pages,
            data_start_page,
        }
    }

    /// A reasonable default: inode count scaled to device size, capped to
    /// keep table overhead small.
    pub fn for_device(device_len: usize) -> Geometry {
        let pages = (device_len / PAGE_SIZE) as u64;
        let max_inodes = (pages / 2).clamp(64, 1 << 20);
        Geometry::new(device_len, max_inodes)
    }

    /// Device byte offset of inode `ino`'s record.
    pub fn inode_offset(&self, ino: u64) -> u64 {
        debug_assert!(ino >= 1 && ino <= self.max_inodes, "ino {ino} out of range");
        self.inode_table_page * PAGE_SIZE as u64 + (ino - 1) * INODE_SIZE
    }

    /// Device byte offset of inode `ino`'s shadow record.
    pub fn shadow_offset(&self, ino: u64) -> u64 {
        debug_assert!(ino >= 1 && ino <= self.max_inodes);
        self.shadow_page * PAGE_SIZE as u64 + (ino - 1) * SHADOW_SIZE
    }

    /// Device byte offset of the allocator bitmap.
    pub fn bitmap_offset(&self) -> u64 {
        self.bitmap_page * PAGE_SIZE as u64
    }

    /// Number of allocatable data pages.
    pub fn data_pages(&self) -> u64 {
        self.total_pages - self.data_start_page
    }

    /// Device byte offset of page `page`.
    pub fn page_offset(&self, page: u64) -> u64 {
        page * PAGE_SIZE as u64
    }
}

/// A decoded inode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RawInode {
    /// Commit marker (equals `ino` when valid).
    pub marker: u64,
    /// Type tag (raw; may be corrupt).
    pub itype: u32,
    /// Permission bits.
    pub mode: u32,
    /// Owner uid.
    pub uid: u32,
    /// Directory log tail count.
    pub ntails: u32,
    /// Size in bytes (files) or live entries (dirs).
    pub size: u64,
    /// Link count.
    pub nlink: u64,
    /// Per-inode sequence counter.
    pub seq: u64,
    /// Direct page pointers (files) or tail heads (dirs).
    pub direct: [u64; NDIRECT],
    /// Single-indirect page.
    pub indirect: u64,
    /// Double-indirect page.
    pub dindirect: u64,
    /// Group-durability watermark (directories; 0 when no batch is open).
    pub batch_seq: u64,
    /// Extent-tree root (regular files; 0 = legacy block mapping).
    pub extent_root: u64,
}

impl RawInode {
    /// Is the commit marker valid for inode number `ino`?
    pub fn is_committed(&self, ino: u64) -> bool {
        self.marker == ino && ino != 0
    }

    /// Decoded type, if the tag is well-formed.
    pub fn inode_type(&self) -> Option<InodeType> {
        InodeType::from_raw(self.itype)
    }
}

/// Read the inode record for `ino` directly from the device (kernel-side;
/// the LibFS reads through its mapping instead). The whole 256-byte record
/// is fetched with one device access and decoded from the buffer.
pub fn read_inode(dev: &Arc<PmemDevice>, geom: &Geometry, ino: u64) -> PmemResult<RawInode> {
    let base = geom.inode_offset(ino);
    let mut rec = [0u8; INODE_SIZE as usize];
    dev.read(base, &mut rec)?;
    Ok(decode_inode(&rec))
}

/// Decode an inode record from its raw bytes.
pub fn decode_inode(rec: &[u8; INODE_SIZE as usize]) -> RawInode {
    let u64_at =
        |off: u64| u64::from_le_bytes(rec[off as usize..off as usize + 8].try_into().expect("8"));
    let u32_at =
        |off: u64| u32::from_le_bytes(rec[off as usize..off as usize + 4].try_into().expect("4"));
    let mut direct = [0u64; NDIRECT];
    for (i, d) in direct.iter_mut().enumerate() {
        *d = u64_at(I_DIRECT + 8 * i as u64);
    }
    RawInode {
        marker: u64_at(I_MARKER),
        itype: u32_at(I_TYPE),
        mode: u32_at(I_MODE),
        uid: u32_at(I_UID),
        ntails: u32_at(I_NTAILS),
        size: u64_at(I_SIZE),
        nlink: u64_at(I_NLINK),
        seq: u64_at(I_SEQ),
        direct,
        indirect: u64_at(I_INDIRECT),
        dindirect: u64_at(I_DINDIRECT),
        batch_seq: u64_at(I_BATCH_SEQ),
        extent_root: u64_at(I_EXTENT_ROOT),
    }
}

/// A decoded, committed extent record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RawExtent {
    /// First file block the run covers.
    pub file_block: u64,
    /// First data page of the run.
    pub page: u64,
    /// Run length in blocks (always > 0 for a committed record).
    pub len: u64,
}

/// Walk a regular file's extent-leaf chain, calling `leaf` for every leaf
/// page and `rec` for every **committed** record (`len != 0`; torn inserts
/// are invisible holes). Returns an error string on structural corruption
/// (leaf pointer out of the data region, pointer cycle, mapped run out of
/// range).
pub fn walk_extents(
    dev: &Arc<PmemDevice>,
    geom: &Geometry,
    inode: &RawInode,
    mut leaf: impl FnMut(u64),
    mut rec: impl FnMut(RawExtent),
) -> Result<(), String> {
    let mut page = inode.extent_root;
    let mut hops = 0u64;
    while page != 0 {
        if page < geom.data_start_page || page >= geom.total_pages {
            return Err(format!("extent leaf page {page} out of data region"));
        }
        hops += 1;
        if hops > geom.total_pages {
            return Err("extent leaf chain cycle".to_string());
        }
        leaf(page);
        let base = geom.page_offset(page);
        let mut buf = [0u8; PAGE_SIZE];
        dev.read(base, &mut buf).map_err(|e| e.to_string())?;
        for slot in 0..EXTENTS_PER_PAGE {
            let off = (EXTENT_FIRST_REC + slot * EXTENT_REC_SIZE) as usize;
            let u64_at = |field: u64| {
                let at = off + field as usize;
                u64::from_le_bytes(buf[at..at + 8].try_into().expect("8"))
            };
            let len = u64_at(E_LEN);
            if len == 0 {
                continue; // uncommitted hole; later slots may be committed
            }
            let ext = RawExtent {
                file_block: u64_at(E_FILE_BLOCK),
                page: u64_at(E_PAGE),
                len,
            };
            if ext.page < geom.data_start_page || ext.page + ext.len > geom.total_pages {
                return Err(format!(
                    "extent run [{}, +{}) out of data region",
                    ext.page, ext.len
                ));
            }
            rec(ext);
        }
        page = u64::from_le_bytes(buf[0..8].try_into().expect("8"));
    }
    Ok(())
}

/// A decoded dentry record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RawDentry {
    /// Device offset of the record.
    pub offset: u64,
    /// Commit marker (name length; 0 = uncommitted slot).
    pub marker: u16,
    /// Tombstone flag.
    pub deleted: bool,
    /// Target inode.
    pub ino: u64,
    /// Per-directory sequence.
    pub seq: u64,
    /// Name bytes (exactly `marker` bytes).
    pub name: Vec<u8>,
}

impl RawDentry {
    /// True when the record is a committed, live entry.
    pub fn is_live(&self) -> bool {
        self.marker != 0 && !self.deleted
    }

    /// The name as UTF-8, if valid.
    pub fn name_str(&self) -> Option<&str> {
        std::str::from_utf8(&self.name).ok()
    }

    /// A partially persisted name contains NUL bytes (the unpersisted
    /// region of a zero-initialized device) — the §4.2 corruption signature.
    pub fn name_has_nul(&self) -> bool {
        self.name.contains(&0)
    }
}

/// Read the dentry record at absolute device offset `off` (one device
/// access for the whole 128-byte record).
pub fn read_dentry(dev: &Arc<PmemDevice>, off: u64) -> PmemResult<RawDentry> {
    let mut rec = [0u8; DENTRY_SIZE as usize];
    dev.read(off, &mut rec)?;
    Ok(decode_dentry(&rec, off))
}

/// Decode a dentry record from its raw bytes.
pub fn decode_dentry(rec: &[u8; DENTRY_SIZE as usize], off: u64) -> RawDentry {
    let marker = u16::from_le_bytes(
        rec[D_MARKER as usize..D_MARKER as usize + 2]
            .try_into()
            .expect("2"),
    );
    let deleted = rec[D_DELETED as usize] != 0;
    let ino = u64::from_le_bytes(
        rec[D_INO as usize..D_INO as usize + 8]
            .try_into()
            .expect("8"),
    );
    let seq = u64::from_le_bytes(
        rec[D_SEQ as usize..D_SEQ as usize + 8]
            .try_into()
            .expect("8"),
    );
    let name_len = (marker as usize).min(DENTRY_NAME_CAP);
    let name = rec[D_NAME as usize..D_NAME as usize + name_len].to_vec();
    RawDentry {
        offset: off,
        marker,
        deleted,
        ino,
        seq,
        name,
    }
}

/// Walk every dentry record of a directory's multi-tailed log, calling `f`
/// for each committed record (live or tombstoned). Records with marker 0
/// terminate a page scan (the log is append-only within a page).
///
/// Returns an error string on structural corruption (bad page pointer,
/// pointer cycle).
pub fn walk_dir_log(
    dev: &Arc<PmemDevice>,
    geom: &Geometry,
    inode: &RawInode,
    mut f: impl FnMut(RawDentry),
) -> Result<(), String> {
    let ntails = (inode.ntails as usize).min(NDIRECT);
    for tail in 0..ntails {
        let mut page = inode.direct[tail];
        let mut hops = 0u64;
        while page != 0 {
            if page < geom.data_start_page || page >= geom.total_pages {
                return Err(format!("dir log page {page} out of data region"));
            }
            hops += 1;
            if hops > geom.total_pages {
                return Err("dir log page cycle".to_string());
            }
            // Fetch the whole page with one device access and decode the
            // records from the buffer.
            let base = geom.page_offset(page);
            let mut buf = [0u8; PAGE_SIZE];
            dev.read(base, &mut buf).map_err(|e| e.to_string())?;
            for slot in 0..DENTRIES_PER_PAGE {
                let rec_off = (DIRPAGE_FIRST_DENTRY + slot * DENTRY_SIZE) as usize;
                let rec: &[u8; DENTRY_SIZE as usize] = buf[rec_off..rec_off + DENTRY_SIZE as usize]
                    .try_into()
                    .expect("record within page");
                let marker = u16::from_le_bytes([rec[0], rec[1]]);
                if marker == 0 {
                    // An uncommitted slot is a hole (e.g. a reservation
                    // that never committed); later slots may still hold
                    // committed records, so keep scanning.
                    continue;
                }
                f(decode_dentry(rec, base + rec_off as u64));
            }
            page = u64::from_le_bytes(buf[0..8].try_into().expect("8"));
        }
    }
    Ok(())
}

/// Format the superblock (page 0) and persist it.
pub fn write_superblock(dev: &Arc<PmemDevice>, geom: &Geometry) -> PmemResult<()> {
    dev.write_u64(SB_MAGIC, SUPER_MAGIC)?;
    dev.write_u64(SB_PAGES, geom.total_pages)?;
    dev.write_u64(SB_MAX_INODES, geom.max_inodes)?;
    dev.persist(0, 24)?;
    Ok(())
}

/// Validate the superblock and reconstruct the geometry.
pub fn read_superblock(dev: &Arc<PmemDevice>) -> Result<Geometry, String> {
    let magic = dev.read_u64(SB_MAGIC).map_err(|e| e.to_string())?;
    if magic != SUPER_MAGIC {
        return Err(format!("bad superblock magic {magic:#x}"));
    }
    let pages = dev.read_u64(SB_PAGES).map_err(|e| e.to_string())?;
    let max_inodes = dev.read_u64(SB_MAX_INODES).map_err(|e| e.to_string())?;
    if pages != dev.page_count() {
        return Err(format!(
            "superblock page count {pages} != device {}",
            dev.page_count()
        ));
    }
    Ok(Geometry::new(dev.len(), max_inodes))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geometry_layout_is_ordered_and_disjoint() {
        let g = Geometry::new(64 << 20, 1024);
        assert!(g.inode_table_page >= 1);
        assert!(g.shadow_page >= g.inode_table_page + g.inode_table_pages);
        assert!(g.bitmap_page >= g.shadow_page + g.shadow_pages);
        assert!(g.data_start_page >= g.bitmap_page + g.bitmap_pages);
        assert!(g.data_start_page < g.total_pages);
        assert!(g.data_pages() > 0);
    }

    #[test]
    fn inode_offsets_do_not_overlap() {
        let g = Geometry::new(64 << 20, 1024);
        assert_eq!(g.inode_offset(2) - g.inode_offset(1), INODE_SIZE);
        assert_eq!(g.shadow_offset(2) - g.shadow_offset(1), SHADOW_SIZE);
    }

    #[test]
    fn mode_checks() {
        use mode::*;
        assert!(can_write(RW_ALL, 1, 1));
        assert!(can_write(RW_ALL, 1, 2));
        assert!(can_write(RW_OWNER_RO_OTHER, 1, 1));
        assert!(!can_write(RW_OWNER_RO_OTHER, 1, 2));
        assert!(can_read(RW_OWNER_RO_OTHER, 1, 2));
    }

    #[test]
    fn inode_round_trip() {
        let dev = PmemDevice::new(64 << 20);
        let g = Geometry::new(64 << 20, 256);
        let base = g.inode_offset(5);
        dev.write_u64(base + I_MARKER, 5).unwrap();
        dev.write_u32(base + I_TYPE, 2).unwrap();
        dev.write_u32(base + I_NTAILS, 4).unwrap();
        dev.write_u64(base + I_SIZE, 7).unwrap();
        dev.write_u64(base + I_DIRECT, 99).unwrap();
        let ino = read_inode(&dev, &g, 5).unwrap();
        assert!(ino.is_committed(5));
        assert_eq!(ino.inode_type(), Some(InodeType::Directory));
        assert_eq!(ino.ntails, 4);
        assert_eq!(ino.size, 7);
        assert_eq!(ino.direct[0], 99);
        assert!(!ino.is_committed(6));
    }

    #[test]
    fn dentry_round_trip() {
        let dev = PmemDevice::new(1 << 20);
        let off = 4096;
        dev.write_u16(off + D_MARKER, 5).unwrap();
        dev.write_u64(off + D_INO, 42).unwrap();
        dev.write_u64(off + D_SEQ, 3).unwrap();
        dev.write(off + D_NAME, b"hello").unwrap();
        let d = read_dentry(&dev, off).unwrap();
        assert!(d.is_live());
        assert_eq!(d.name_str(), Some("hello"));
        assert_eq!(d.ino, 42);
        assert_eq!(d.seq, 3);
        assert!(!d.name_has_nul());
    }

    #[test]
    fn dentry_nul_detection() {
        let dev = PmemDevice::new(1 << 20);
        let off = 4096;
        // Marker says 50 bytes but only 10 name bytes were "persisted".
        dev.write_u16(off + D_MARKER, 50).unwrap();
        dev.write(off + D_NAME, b"persisted!").unwrap();
        let d = read_dentry(&dev, off).unwrap();
        assert!(d.name_has_nul(), "partially persisted name must show NULs");
    }

    #[test]
    fn superblock_round_trip() {
        let dev = PmemDevice::new(64 << 20);
        let g = Geometry::new(64 << 20, 512);
        write_superblock(&dev, &g).unwrap();
        let g2 = read_superblock(&dev).unwrap();
        assert_eq!(g, g2);
    }

    #[test]
    fn superblock_rejects_garbage() {
        let dev = PmemDevice::new(1 << 20);
        assert!(read_superblock(&dev).is_err());
    }

    #[test]
    fn inode_type_raw_round_trip() {
        assert_eq!(
            InodeType::from_raw(InodeType::Regular.to_raw()),
            Some(InodeType::Regular)
        );
        assert_eq!(
            InodeType::from_raw(InodeType::Directory.to_raw()),
            Some(InodeType::Directory)
        );
        assert_eq!(InodeType::from_raw(7), None);
    }

    #[test]
    fn extent_walk_round_trip() {
        let dev = PmemDevice::new(64 << 20);
        let g = Geometry::new(64 << 20, 256);
        let base = g.inode_offset(7);
        dev.write_u64(base + I_MARKER, 7).unwrap();
        dev.write_u32(base + I_TYPE, 1).unwrap();
        let leaf = g.data_start_page;
        dev.write_u64(base + I_EXTENT_ROOT, leaf).unwrap();
        let leaf_base = g.page_offset(leaf);
        // Slot 0: committed run [block 0 -> page data_start+1, len 2].
        let s0 = leaf_base + EXTENT_FIRST_REC;
        dev.write_u64(s0 + E_FILE_BLOCK, 0).unwrap();
        dev.write_u64(s0 + E_PAGE, leaf + 1).unwrap();
        dev.write_u64(s0 + E_LEN, 2).unwrap();
        // Slot 1: torn insert — start/page persisted, len (marker) not.
        let s1 = s0 + EXTENT_REC_SIZE;
        dev.write_u64(s1 + E_FILE_BLOCK, 9).unwrap();
        dev.write_u64(s1 + E_PAGE, leaf + 3).unwrap();
        // Slot 2: committed after the hole.
        let s2 = s1 + EXTENT_REC_SIZE;
        dev.write_u64(s2 + E_FILE_BLOCK, 4).unwrap();
        dev.write_u64(s2 + E_PAGE, leaf + 4).unwrap();
        dev.write_u64(s2 + E_LEN, 1).unwrap();
        let ino = read_inode(&dev, &g, 7).unwrap();
        assert_eq!(ino.extent_root, leaf);
        let (mut leaves, mut recs) = (Vec::new(), Vec::new());
        walk_extents(&dev, &g, &ino, |p| leaves.push(p), |e| recs.push(e)).unwrap();
        assert_eq!(leaves, vec![leaf]);
        assert_eq!(
            recs,
            vec![
                RawExtent { file_block: 0, page: leaf + 1, len: 2 },
                RawExtent { file_block: 4, page: leaf + 4, len: 1 },
            ],
            "torn slot 1 must be invisible"
        );
    }

    #[test]
    fn extent_geometry_fits_page() {
        assert!(EXTENT_FIRST_REC + EXTENTS_PER_PAGE * EXTENT_REC_SIZE <= PAGE_SIZE as u64);
        assert_eq!(EXTENTS_PER_PAGE, 170);
        const { assert!(I_EXTENT_ROOT + 8 <= INODE_SIZE) };
    }

    #[test]
    fn dentry_geometry_fits_page() {
        assert!(DIRPAGE_FIRST_DENTRY + DENTRIES_PER_PAGE * DENTRY_SIZE <= PAGE_SIZE as u64);
        assert_eq!(DENTRIES_PER_PAGE, 31);
    }
}
