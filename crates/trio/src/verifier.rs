//! The integrity verifier (Figure 1 ⑥–⑧).
//!
//! When an inode's ownership leaves a LibFS (release, commit, or a
//! trust-group boundary), the verifier inspects the inode's core state and
//! compares it against the kernel's ground truth:
//!
//! **Structural checks** — the commit marker matches the inode number, the
//! type tag is well-formed, page pointers stay inside the data region and
//! are allocated, dentries are well-formed (no NUL inside the name — the
//! §4.2 partial-persistence signature — no duplicates, committed targets).
//!
//! **Invariant I3** (the hierarchy forms a connected tree) — a child present
//! at acquire time may disappear only if (a) it was deleted and its whole
//! verified subtree is gone, or (b) — with the §4.1 patch — its shadow
//! parent pointer shows it was *renamed* into a directory that has since
//! been verified. A new inode is only connected when a verified parent
//! references it, which yields LibFS Rule (1); the relocation checks below
//! yield Rules (2) and (3).
//!
//! **Relocation checks (§4.1 patch)** — a child arriving from another
//! directory requires: the LibFS still owns the old parent; for directories,
//! the new parent is not a descendant of the child (no cycles, §4.6 case 2)
//! and the global rename lease is held (§4.6 case 1).
//!
//! On failure the controller rolls the inode back to its acquire-time
//! snapshot (§2.1 step ⑧, the "roll back" policy).

use std::collections::{HashMap, HashSet};
use std::sync::Arc;

use pmem::{PmemDevice, PAGE_SIZE};
use vfs::{FsError, FsResult};

use crate::controller::{KState, KernelConfig, LibFsId};
use crate::format::{self, mode, Geometry, InodeType, RawDentry, RawInode, NDIRECT, PTRS_PER_PAGE};
use crate::lease::RenameLease;
use crate::shadow::ShadowEntry;

/// Acquire-time state of one inode, used for verification diffs and
/// rollback.
#[derive(Debug, Clone)]
pub struct Snapshot {
    /// The inode this snapshot belongs to.
    pub ino: u64,
    /// Raw inode record bytes.
    pub inode_bytes: Vec<u8>,
    /// Directory log pages (page number, contents); empty for files.
    pub pages: Vec<(u64, Vec<u8>)>,
    /// Verified children at acquire time (directories).
    pub children: HashMap<String, u64>,
}

impl Snapshot {
    /// The snapshot of an inode that did not exist yet (fresh grants):
    /// rolling back to it wipes the inode record.
    pub(crate) fn empty(ino: u64) -> Snapshot {
        Snapshot {
            ino,
            inode_bytes: vec![0u8; format::INODE_SIZE as usize],
            pages: Vec::new(),
            children: std::collections::HashMap::new(),
        }
    }
}

/// Capture the acquire-time snapshot of `ino`.
pub(crate) fn take_snapshot(
    device: &Arc<PmemDevice>,
    geom: &Geometry,
    shadow: &crate::shadow::ShadowTable,
    ino: u64,
) -> Result<Snapshot, String> {
    let base = geom.inode_offset(ino);
    let mut inode_bytes = vec![0u8; format::INODE_SIZE as usize];
    device
        .read(base, &mut inode_bytes)
        .map_err(|e| e.to_string())?;

    let inode = format::read_inode(device, geom, ino).map_err(|e| e.to_string())?;
    let mut pages = Vec::new();
    if inode.is_committed(ino) && inode.inode_type() == Some(InodeType::Directory) {
        let ntails = (inode.ntails as usize).min(NDIRECT);
        for tail in 0..ntails {
            let mut page = inode.direct[tail];
            let mut hops = 0u64;
            while page != 0 && page < geom.total_pages {
                let mut buf = vec![0u8; PAGE_SIZE];
                device
                    .read(geom.page_offset(page), &mut buf)
                    .map_err(|e| e.to_string())?;
                let next = u64::from_le_bytes(buf[0..8].try_into().expect("8 bytes"));
                pages.push((page, buf));
                page = next;
                hops += 1;
                if hops > geom.total_pages {
                    return Err("dir log cycle while snapshotting".into());
                }
            }
        }
    }
    Ok(Snapshot {
        ino,
        inode_bytes,
        pages,
        children: shadow.children_of(ino),
    })
}

/// Restore an inode record and its directory log pages to the snapshot
/// state (§2.1 step ⑧, the roll-back corruption policy).
pub(crate) fn rollback(device: &Arc<PmemDevice>, geom: &Geometry, snap: &Snapshot) {
    // A rollback must not fail; errors here would indicate a bug in the
    // kernel substrate itself, hence the expects.
    for (page, bytes) in &snap.pages {
        device
            .write(*page * PAGE_SIZE as u64, bytes)
            .expect("rollback page write");
        device
            .clwb(*page * PAGE_SIZE as u64, bytes.len())
            .expect("rollback page flush");
    }
    let base = geom.inode_offset(snap.ino);
    device
        .write(base, &snap.inode_bytes)
        .expect("rollback inode write");
    device
        .clwb(base, snap.inode_bytes.len())
        .expect("rollback inode flush");
    device.sfence();
}

/// Is `page` inside the data region and marked allocated in the durable
/// bitmap?
fn page_allocated(device: &Arc<PmemDevice>, geom: &Geometry, page: u64) -> bool {
    if page < geom.data_start_page || page >= geom.total_pages {
        return false;
    }
    let idx = page - geom.data_start_page;
    match device.read_u8(geom.bitmap_offset() + idx / 8) {
        Ok(b) => b & (1 << (idx % 8)) != 0,
        Err(_) => false,
    }
}

fn fail(ino: u64, reason: impl Into<String>) -> FsError {
    FsError::VerificationFailed {
        ino,
        reason: reason.into(),
    }
}

/// Structural validation of a file inode's page tree: every nonzero pointer
/// reachable within `size` must be an allocated data page.
fn check_file_pages(
    device: &Arc<PmemDevice>,
    geom: &Geometry,
    ino: u64,
    inode: &RawInode,
) -> FsResult<()> {
    let npages = inode.size.div_ceil(PAGE_SIZE as u64);
    let check = |p: u64| -> FsResult<()> {
        if p != 0 && !page_allocated(device, geom, p) {
            return Err(fail(ino, format!("file page {p} not allocated")));
        }
        Ok(())
    };
    for i in 0..npages.min(NDIRECT as u64) {
        check(inode.direct[i as usize])?;
    }
    if npages > NDIRECT as u64 && inode.indirect != 0 {
        check(inode.indirect)?;
        let ind_base = geom.page_offset(inode.indirect);
        let n = (npages - NDIRECT as u64).min(PTRS_PER_PAGE);
        for i in 0..n {
            let p = device
                .read_u64(ind_base + 8 * i)
                .map_err(|e| fail(ino, e.to_string()))?;
            check(p)?;
        }
    }
    let dind_start = NDIRECT as u64 + PTRS_PER_PAGE;
    if npages > dind_start && inode.dindirect != 0 {
        check(inode.dindirect)?;
        let dind_base = geom.page_offset(inode.dindirect);
        let remaining = npages - dind_start;
        let n_l1 = remaining.div_ceil(PTRS_PER_PAGE).min(PTRS_PER_PAGE);
        for i in 0..n_l1 {
            let l1 = device
                .read_u64(dind_base + 8 * i)
                .map_err(|e| fail(ino, e.to_string()))?;
            if l1 == 0 {
                continue;
            }
            check(l1)?;
            let l1_base = geom.page_offset(l1);
            let in_this = (remaining - i * PTRS_PER_PAGE).min(PTRS_PER_PAGE);
            for j in 0..in_this {
                let p = device
                    .read_u64(l1_base + 8 * j)
                    .map_err(|e| fail(ino, e.to_string()))?;
                check(p)?;
            }
        }
    }
    Ok(())
}

/// Parse and structurally validate a directory's live dentries.
fn parse_dir(
    device: &Arc<PmemDevice>,
    geom: &Geometry,
    ino: u64,
    inode: &RawInode,
) -> FsResult<HashMap<String, u64>> {
    // Log pages must be allocated data pages (checked during the walk by
    // walk_dir_log's range test plus the bitmap test here).
    let ntails = (inode.ntails as usize).min(NDIRECT);
    for tail in 0..ntails {
        let mut page = inode.direct[tail];
        let mut hops = 0;
        while page != 0 {
            if !page_allocated(device, geom, page) {
                return Err(fail(ino, format!("dir log page {page} not allocated")));
            }
            page = device
                .read_u64(geom.page_offset(page))
                .map_err(|e| fail(ino, e.to_string()))?;
            hops += 1;
            if hops > geom.total_pages {
                return Err(fail(ino, "dir log cycle"));
            }
        }
    }

    let mut live: HashMap<String, u64> = HashMap::new();
    let mut dup: Option<String> = None;
    let mut bad: Option<String> = None;
    format::walk_dir_log(device, geom, inode, |d: RawDentry| {
        if !d.is_live() || bad.is_some() || dup.is_some() {
            return;
        }
        if d.marker as usize > format::DENTRY_NAME_CAP {
            bad = Some(format!("dentry marker {} exceeds name cap", d.marker));
            return;
        }
        if d.name_has_nul() {
            bad = Some(format!(
                "partially persisted dentry at {:#x} (NUL inside name)",
                d.offset
            ));
            return;
        }
        let name = match d.name_str() {
            Some(n) => n.to_string(),
            None => {
                bad = Some(format!("non-UTF-8 dentry name at {:#x}", d.offset));
                return;
            }
        };
        if d.ino == 0 || d.ino > geom.max_inodes {
            bad = Some(format!("dentry '{name}' has out-of-range ino {}", d.ino));
            return;
        }
        if live.insert(name.clone(), d.ino).is_some() {
            dup = Some(name);
        }
    })
    .map_err(|e| fail(ino, e))?;

    if let Some(b) = bad {
        return Err(fail(ino, b));
    }
    if let Some(name) = dup {
        return Err(fail(ino, format!("duplicate live dentry '{name}'")));
    }

    // The directory's size field counts live entries.
    if inode.size != live.len() as u64 {
        let mut names: Vec<&str> = live.keys().map(|s| s.as_str()).collect();
        names.sort_unstable();
        return Err(fail(
            ino,
            format!(
                "dir size {} != live entries {} [{}]",
                inode.size,
                live.len(),
                names.join(", ")
            ),
        ));
    }

    // Every live target must be a committed inode with a well-formed type —
    // this is what catches the §4.2 partially persisted *inode*.
    for (name, &child) in &live {
        let cbase = geom.inode_offset(child);
        let mut hdr = [0u8; 12];
        device
            .read(cbase, &mut hdr)
            .map_err(|e| fail(ino, e.to_string()))?;
        let cmarker = u64::from_le_bytes(hdr[..8].try_into().expect("8"));
        if cmarker != child {
            return Err(fail(
                ino,
                format!("dentry '{name}' references uncommitted inode {child}"),
            ));
        }
        let ctype = u32::from_le_bytes(hdr[8..12].try_into().expect("4"));
        if InodeType::from_raw(ctype).is_none() {
            return Err(fail(
                ino,
                format!("child {child} has malformed type {ctype}"),
            ));
        }
    }
    Ok(live)
}

/// Recursively reclaim the verified subtree of a freed inode. Fails if any
/// verified descendant is still committed in PM — deleting a non-empty
/// directory would disconnect the tree (invariant I3).
fn reclaim_freed_subtree(
    device: &Arc<PmemDevice>,
    geom: &Geometry,
    st: &mut KState,
    parent_ino: u64,
    freed: u64,
) -> FsResult<()> {
    let children = st.shadow.children_of(freed);
    for (name, child) in children {
        let cbase = geom.inode_offset(child);
        let cmarker = device
            .read_u64(cbase)
            .map_err(|e| fail(parent_ino, e.to_string()))?;
        if cmarker == child {
            return Err(fail(
                parent_ino,
                format!(
                    "non-empty directory {freed} deleted: verified child '{name}' ({child}) still committed"
                ),
            ));
        }
        reclaim_freed_subtree(device, geom, st, parent_ino, child)?;
    }
    st.shadow
        .remove(freed)
        .map_err(|e| fail(parent_ino, e.to_string()))?;
    Ok(())
}

/// The verification engine. On success the kernel's ground truth (shadow
/// entries, parent pointers, children baselines) is updated; on failure an
/// error describes the violation and the caller rolls back.
#[allow(clippy::too_many_arguments)]
pub(crate) fn verify_and_apply(
    device: &Arc<PmemDevice>,
    geom: &Geometry,
    config: &KernelConfig,
    lease: &RenameLease,
    st: &mut KState,
    libfs: LibFsId,
    ino: u64,
    snap: &Snapshot,
) -> FsResult<()> {
    let uid = st
        .libfs
        .get(&libfs.0)
        .map(|i| i.uid)
        .ok_or_else(|| FsError::Internal(format!("unregistered LibFS {libfs:?}")))?;

    let inode = format::read_inode(device, geom, ino).map_err(|e| fail(ino, e.to_string()))?;

    // A freed inode: the LibFS deleted it. Legitimate only if a (verified)
    // parent no longer references it — which that parent's own verification
    // establishes — and its verified subtree is gone. Here we only require
    // the subtree condition; connectivity is the parent's problem.
    if inode.marker == 0 {
        // Deleting an inode the LibFS couldn't write is a violation.
        if let Some(e) = st.shadow.get(ino).cloned() {
            if !mode::can_write(e.mode, e.uid, uid) {
                return Err(fail(ino, "deletion without write permission"));
            }
            reclaim_freed_subtree(device, geom, st, ino, ino)?;
        }
        return Ok(());
    }

    if !inode.is_committed(ino) {
        return Err(fail(
            ino,
            format!("bad commit marker {:#x} (expected {ino})", inode.marker),
        ));
    }
    let itype = inode
        .inode_type()
        .ok_or_else(|| fail(ino, format!("malformed type tag {}", inode.itype)))?;

    // Rule (1): an inode unknown to the kernel is, from the kernel's
    // perspective, disconnected from the root (I3) — its parent must be
    // committed or released first.
    let shadow_entry = match st.shadow.get(ino).cloned() {
        Some(e) => e,
        None => {
            return Err(fail(
                ino,
                "inode not connected to the root from the kernel's perspective \
                 (commit/release its parent directory first — LibFS Rule (1))",
            ))
        }
    };
    if shadow_entry.itype != itype {
        return Err(fail(
            ino,
            format!(
                "type changed: shadow says {:?}, core state says {itype:?}",
                shadow_entry.itype
            ),
        ));
    }

    // Identity fields are immutable in this model.
    if inode.uid != shadow_entry.uid || inode.mode != shadow_entry.mode {
        return Err(fail(ino, "uid/mode tampered with"));
    }

    match itype {
        InodeType::Regular => {
            // Deep-walking the block map is only needed when the file's
            // metadata changed since acquire: overwrites of existing
            // blocks leave the inode record byte-identical, and verifying
            // them per transfer would defeat TRIO's amortization.
            let base = geom.inode_offset(ino);
            let mut cur = vec![0u8; format::INODE_SIZE as usize];
            device
                .read(base, &mut cur)
                .map_err(|e| fail(ino, e.to_string()))?;
            if cur != snap.inode_bytes {
                if !mode::can_write(inode.mode, inode.uid, uid) {
                    return Err(fail(ino, "file modified without write permission"));
                }
                check_file_pages(device, geom, ino, &inode)?;
            }
            Ok(())
        }
        InodeType::Directory => {
            let live = parse_dir(device, geom, ino, &inode)?;
            let old = &snap.children;

            if live != *old && !mode::can_write(inode.mode, inode.uid, uid) {
                return Err(fail(ino, "directory modified without write permission"));
            }

            let old_inos: HashSet<u64> = old.values().copied().collect();
            let new_inos: HashSet<u64> = live.values().copied().collect();

            // Children removed by name.
            for (name, &child) in old {
                if live.get(name) == Some(&child) {
                    continue;
                }
                if new_inos.contains(&child) {
                    // Same-directory rename: the inode is still here under
                    // another name.
                    continue;
                }
                let cmarker = device
                    .read_u64(geom.inode_offset(child))
                    .map_err(|e| fail(ino, e.to_string()))?;
                if cmarker != child {
                    // Deleted; its verified subtree must be gone too.
                    reclaim_freed_subtree(device, geom, st, ino, child)?;
                    continue;
                }
                if config.rename_aware_verifier {
                    // §4.1 patch: consult the shadow parent pointer. If the
                    // child was renamed away and its new parent has been
                    // verified, the pointer no longer names us.
                    let parent_now = st.shadow.get(child).map(|e| e.parent);
                    if parent_now == Some(ino) || parent_now.is_none() {
                        return Err(fail(
                            ino,
                            format!(
                                "child '{name}' ({child}) missing but still allocated; \
                                 commit/release its new parent first (LibFS Rule (2))"
                            ),
                        ));
                    }
                    // Renamed away: legitimate.
                } else {
                    // Original ArckFS: the verifier cannot distinguish a
                    // rename from an illegal deletion (§4.1) and must fail.
                    return Err(fail(
                        ino,
                        format!(
                            "child '{name}' ({child}) missing but still allocated \
                             (cannot distinguish rename from deletion)"
                        ),
                    ));
                }
            }

            // Children added by name.
            for (name, &child) in &live {
                if old.get(name) == Some(&child) {
                    continue;
                }
                if old_inos.contains(&child) {
                    // Same-directory rename; identity unchanged.
                    continue;
                }
                let child_inode = format::read_inode(device, geom, child)
                    .map_err(|e| fail(ino, e.to_string()))?;
                let child_type = child_inode
                    .inode_type()
                    .ok_or_else(|| fail(ino, format!("child {child} malformed type")))?;
                match st.shadow.get(child).cloned() {
                    None => {
                        // Newly created inode: becomes connected here.
                        st.shadow
                            .upsert(ShadowEntry {
                                ino: child,
                                itype: child_type,
                                mode: child_inode.mode,
                                uid: child_inode.uid,
                                parent: ino,
                            })
                            .map_err(|e| fail(ino, e.to_string()))?;
                    }
                    Some(e) if e.parent == ino => {
                        // Already verified under this directory.
                    }
                    Some(e) => {
                        // Relocation from e.parent into this directory.
                        if config.rename_aware_verifier {
                            let owns_old = st
                                .owners
                                .get(&e.parent)
                                .map(|s| s.contains(&libfs.0))
                                .unwrap_or(false);
                            if !owns_old {
                                return Err(fail(
                                    ino,
                                    format!(
                                        "relocated child '{name}' ({child}): LibFS does not \
                                         currently own the old parent {} (§4.1 check 1)",
                                        e.parent
                                    ),
                                ));
                            }
                            if e.itype == InodeType::Directory {
                                if st.shadow.is_descendant_of(ino, child) {
                                    return Err(fail(
                                        ino,
                                        format!(
                                            "relocating directory {child} under its own \
                                             descendant {ino} would create a cycle (§4.1 check 2)"
                                        ),
                                    ));
                                }
                                if config.require_rename_lease && !lease.held_by(libfs.0) {
                                    return Err(fail(
                                        ino,
                                        "directory relocation without the global rename \
                                         lease (§4.1 check 3)",
                                    ));
                                }
                            }
                        }
                        st.shadow
                            .set_parent(child, ino)
                            .map_err(|e2| fail(ino, e2.to_string()))?;
                    }
                }
            }

            st.shadow.set_children(ino, live);
            Ok(())
        }
    }
}
