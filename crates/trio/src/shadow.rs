//! The shadow inode table — the kernel's ground truth.
//!
//! ArckFS's core state includes a shadow inode table that "serves as the
//! ground truth for comparison with the inodes used by LibFSes" (§2.2).
//! The kernel records here, for every inode it has *verified*:
//!
//! * identity (type, owner, permission bits), and
//! * — **ArckFS+ only** (§4.1 patch) — the **parent pointer**, updated when
//!   the new parent of a rename commits successfully, which is what lets the
//!   verifier distinguish "child deleted" from "child renamed away", plus
//! * the verified set of children of each directory (kept in DRAM and
//!   reconstructible from the parent pointers), used as the baseline for
//!   the next verification diff.
//!
//! The table is persisted to PM so that recovery (and the fsck oracle) can
//! cross-check it, and cached in DRAM for speed.

use std::collections::HashMap;
use std::sync::Arc;

use pmem::{PmemDevice, PmemResult};

use crate::format::{Geometry, InodeType, SHADOW_SIZE};

// Shadow record field offsets.
const S_INO: u64 = 0;
const S_TYPE: u64 = 8;
const S_MODE: u64 = 12;
const S_UID: u64 = 16;
const S_PARENT: u64 = 24;

/// A shadow entry for one verified inode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShadowEntry {
    /// Inode number.
    pub ino: u64,
    /// Verified type.
    pub itype: InodeType,
    /// Verified permission bits.
    pub mode: u32,
    /// Verified owner.
    pub uid: u32,
    /// Verified parent directory (ArckFS+ §4.1). 0 for the root and for
    /// entries created before the patch existed.
    pub parent: u64,
}

/// DRAM cache + PM persistence of the shadow table.
#[derive(Debug)]
pub struct ShadowTable {
    device: Arc<PmemDevice>,
    geom: Geometry,
    entries: HashMap<u64, ShadowEntry>,
    /// Verified children per directory: name → child ino. This is the
    /// baseline the verifier diffs a released directory against.
    children: HashMap<u64, HashMap<String, u64>>,
}

impl ShadowTable {
    /// An empty table over a freshly formatted device.
    pub fn new(device: Arc<PmemDevice>, geom: Geometry) -> Self {
        ShadowTable {
            device,
            geom,
            entries: HashMap::new(),
            children: HashMap::new(),
        }
    }

    /// Rebuild the DRAM cache from the persisted table (remount). The
    /// verified-children map is rebuilt from the parent pointers; names are
    /// recovered lazily by the first verification of each directory.
    pub fn recover(device: Arc<PmemDevice>, geom: Geometry) -> PmemResult<Self> {
        let mut entries = HashMap::new();
        for ino in 1..=geom.max_inodes {
            let base = geom.shadow_offset(ino);
            let stored = device.read_u64(base + S_INO)?;
            if stored != ino {
                continue;
            }
            let itype = match InodeType::from_raw(device.read_u32(base + S_TYPE)?) {
                Some(t) => t,
                None => continue,
            };
            entries.insert(
                ino,
                ShadowEntry {
                    ino,
                    itype,
                    mode: device.read_u32(base + S_MODE)?,
                    uid: device.read_u32(base + S_UID)?,
                    parent: device.read_u64(base + S_PARENT)?,
                },
            );
        }
        Ok(ShadowTable {
            device,
            geom,
            entries,
            children: HashMap::new(),
        })
    }

    fn persist_entry(&self, e: &ShadowEntry) -> PmemResult<()> {
        let base = self.geom.shadow_offset(e.ino);
        self.device.write_u32(base + S_TYPE, e.itype.to_raw())?;
        self.device.write_u32(base + S_MODE, e.mode)?;
        self.device.write_u32(base + S_UID, e.uid)?;
        self.device.write_u64(base + S_PARENT, e.parent)?;
        // Commit-marker ordering: identity fields first, then the ino field
        // that validates the record.
        self.device.clwb(base, SHADOW_SIZE as usize)?;
        self.device.sfence();
        self.device.write_u64(base + S_INO, e.ino)?;
        self.device.persist(base, 8)?;
        Ok(())
    }

    fn erase_entry(&self, ino: u64) -> PmemResult<()> {
        let base = self.geom.shadow_offset(ino);
        self.device.write_u64(base + S_INO, 0)?;
        self.device.persist(base, 8)?;
        Ok(())
    }

    /// Insert or update an entry, persisting it.
    pub fn upsert(&mut self, e: ShadowEntry) -> PmemResult<()> {
        self.persist_entry(&e)?;
        self.entries.insert(e.ino, e);
        Ok(())
    }

    /// Remove an entry (inode freed), persisting the removal.
    pub fn remove(&mut self, ino: u64) -> PmemResult<Option<ShadowEntry>> {
        self.erase_entry(ino)?;
        self.children.remove(&ino);
        Ok(self.entries.remove(&ino))
    }

    /// Look up an entry.
    pub fn get(&self, ino: u64) -> Option<&ShadowEntry> {
        self.entries.get(&ino)
    }

    /// Update an entry's parent pointer (the §4.1 mechanism), persisting it.
    pub fn set_parent(&mut self, ino: u64, parent: u64) -> PmemResult<()> {
        if let Some(e) = self.entries.get_mut(&ino) {
            e.parent = parent;
            let e = e.clone();
            self.persist_entry(&e)?;
        }
        Ok(())
    }

    /// The verified children of directory `ino` (empty map if never
    /// verified).
    pub fn children_of(&self, ino: u64) -> HashMap<String, u64> {
        self.children.get(&ino).cloned().unwrap_or_default()
    }

    /// Replace the verified-children baseline for `ino`.
    pub fn set_children(&mut self, ino: u64, children: HashMap<String, u64>) {
        self.children.insert(ino, children);
    }

    /// True when directory `ino` has at least one verified child.
    pub fn has_children(&self, ino: u64) -> bool {
        self.children.get(&ino).is_some_and(|c| !c.is_empty())
    }

    /// Walk parent pointers from `start` to the root; returns the chain
    /// (excluding `start`). `None` if a cycle or dangling parent is found.
    pub fn ancestors(&self, start: u64) -> Option<Vec<u64>> {
        let mut chain = Vec::new();
        let mut cur = start;
        let mut hops = 0usize;
        loop {
            let e = self.entries.get(&cur)?;
            if e.parent == 0 {
                return Some(chain); // reached the root
            }
            chain.push(e.parent);
            cur = e.parent;
            hops += 1;
            if hops > self.entries.len() + 1 {
                return None; // cycle
            }
        }
    }

    /// Is `candidate` a descendant of `ancestor` according to the verified
    /// parent pointers? (Used by the §4.1 check "the new parent is not a
    /// descendant of the renaming inode".)
    pub fn is_descendant_of(&self, candidate: u64, ancestor: u64) -> bool {
        if candidate == ancestor {
            return true;
        }
        match self.ancestors(candidate) {
            Some(chain) => chain.contains(&ancestor),
            // A broken chain is treated as "possibly a descendant": the
            // verifier must be conservative.
            None => true,
        }
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no entries exist.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterate over all entries.
    pub fn iter(&self) -> impl Iterator<Item = &ShadowEntry> {
        self.entries.values()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::format::mode;

    fn mk() -> ShadowTable {
        let dev = PmemDevice::new(16 << 20);
        let geom = Geometry::new(16 << 20, 256);
        ShadowTable::new(dev, geom)
    }

    fn entry(ino: u64, parent: u64, itype: InodeType) -> ShadowEntry {
        ShadowEntry {
            ino,
            itype,
            mode: mode::RW_ALL,
            uid: 0,
            parent,
        }
    }

    #[test]
    fn upsert_get_remove() {
        let mut t = mk();
        t.upsert(entry(1, 0, InodeType::Directory)).unwrap();
        t.upsert(entry(2, 1, InodeType::Regular)).unwrap();
        assert_eq!(t.get(2).unwrap().parent, 1);
        assert_eq!(t.len(), 2);
        t.remove(2).unwrap();
        assert!(t.get(2).is_none());
    }

    #[test]
    fn persistence_recovers() {
        let dev = PmemDevice::new(16 << 20);
        let geom = Geometry::new(16 << 20, 256);
        let mut t = ShadowTable::new(dev.clone(), geom);
        t.upsert(entry(1, 0, InodeType::Directory)).unwrap();
        t.upsert(entry(5, 1, InodeType::Directory)).unwrap();
        t.upsert(entry(9, 5, InodeType::Regular)).unwrap();
        t.remove(9).unwrap();
        let r = ShadowTable::recover(dev, geom).unwrap();
        assert_eq!(r.len(), 2);
        assert_eq!(r.get(5).unwrap().parent, 1);
        assert!(r.get(9).is_none());
    }

    #[test]
    fn ancestors_and_descendants() {
        let mut t = mk();
        t.upsert(entry(1, 0, InodeType::Directory)).unwrap();
        t.upsert(entry(2, 1, InodeType::Directory)).unwrap();
        t.upsert(entry(3, 2, InodeType::Directory)).unwrap();
        assert_eq!(t.ancestors(3).unwrap(), vec![2, 1]);
        assert!(t.is_descendant_of(3, 1));
        assert!(t.is_descendant_of(3, 3));
        assert!(!t.is_descendant_of(1, 3));
    }

    #[test]
    fn cycle_detected_conservatively() {
        let mut t = mk();
        t.upsert(entry(2, 3, InodeType::Directory)).unwrap();
        t.upsert(entry(3, 2, InodeType::Directory)).unwrap();
        assert!(t.ancestors(2).is_none());
        assert!(
            t.is_descendant_of(2, 9),
            "broken chain must be conservative"
        );
    }

    #[test]
    fn set_parent_updates() {
        let mut t = mk();
        t.upsert(entry(1, 0, InodeType::Directory)).unwrap();
        t.upsert(entry(2, 1, InodeType::Directory)).unwrap();
        t.upsert(entry(3, 1, InodeType::Directory)).unwrap();
        t.set_parent(3, 2).unwrap();
        assert_eq!(t.get(3).unwrap().parent, 2);
        assert_eq!(t.ancestors(3).unwrap(), vec![2, 1]);
    }

    #[test]
    fn children_baseline() {
        let mut t = mk();
        let mut c = HashMap::new();
        c.insert("a".to_string(), 2u64);
        t.set_children(1, c);
        assert!(t.has_children(1));
        assert_eq!(t.children_of(1).get("a"), Some(&2));
        assert!(!t.has_children(7));
        assert!(t.children_of(7).is_empty());
    }
}
