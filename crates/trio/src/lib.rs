#![warn(missing_docs)]

//! The TRIO kernel substrate.
//!
//! TRIO (Zhou et al., SOSP 2023) splits a file system into per-application
//! LibFSes, an in-kernel access controller, and a trusted integrity
//! verifier. This crate is the trusted side of that split, implemented as an
//! in-process module with a syscall-like API (each entry point counts — and
//! can charge — a kernel crossing):
//!
//! * [`mod@format`] — the on-PM **core state** layout shared with every LibFS:
//!   superblock, inode table, shadow inode table, page-allocator bitmap,
//!   file pages, and the multi-tailed directory dentry log.
//! * [`controller`] — the access controller: inode ownership
//!   (acquire / release / commit / force-release), mapping grants, inode and
//!   page extents granted to LibFSes, trust groups.
//! * [`verifier`] — the integrity verifier: structural checks, the I3
//!   connected-tree invariant, rollback on failure, and (for ArckFS+) the
//!   rename-aware checks of §4.1 driven by the shadow parent pointer.
//! * [`shadow`] — the shadow inode table, the kernel's ground truth.
//! * [`lease`] — the global cross-directory rename lease of §4.6, a lock
//!   with a timeout so a malicious LibFS cannot hold it forever.
//! * [`fsck`] — an offline tree walk over a (possibly crash-sampled) device
//!   image; the oracle used by the crash-consistency checker.

pub mod controller;
pub mod format;
pub mod fsck;
pub mod lease;
pub mod provider;
pub mod shadow;
pub mod verifier;

pub use controller::{InodeGrant, Kernel, KernelConfig, KernelStats, LibFsId};
pub use format::{Geometry, InodeType};
pub use fsck::{
    attribute_tenant_leaks, derive_tenant_usage, logical_fingerprint, logical_snapshot, FsckIssue,
    FsckReport, LogicalEntry, TenantCharges, TenantLeak, TenantUsage,
};
pub use lease::RenameLease;
pub use provider::{ProviderError, QuotaProvider, ResourceProvider};

/// The well-known inode number of the root directory.
pub const ROOT_INO: u64 = 1;
