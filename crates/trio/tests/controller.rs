//! Direct tests of the kernel substrate: grants, ownership, mappings,
//! verification outcomes and rollback — without a LibFS on top, by writing
//! core state by hand through the granted mappings.

use std::sync::Arc;

use pmem::PmemDevice;
use trio::format::{
    self, mode, Geometry, InodeType, DENTRY_SIZE, DIRPAGE_FIRST_DENTRY, D_INO, D_MARKER, D_NAME,
    D_SEQ, I_DIRECT, I_MARKER, I_MODE, I_NTAILS, I_SIZE, I_TYPE, I_UID,
};
use trio::{Kernel, KernelConfig, LibFsId, ROOT_INO};
use vfs::FsError;

const DEV: usize = 32 << 20;

fn kernel(config: KernelConfig) -> Arc<Kernel> {
    let device = PmemDevice::new(DEV);
    let geom = Geometry::for_device(DEV);
    Kernel::format(device, geom, config).expect("format")
}

/// Hand-write a committed inode record through a mapping.
fn write_inode(m: &pmem::Mapping, geom: &Geometry, ino: u64, itype: InodeType) {
    let base = geom.inode_offset(ino);
    m.write_u32(base + I_TYPE, itype.to_raw()).unwrap();
    m.write_u32(base + I_MODE, mode::RW_ALL).unwrap();
    m.write_u32(base + I_UID, 0).unwrap();
    if itype == InodeType::Directory {
        m.write_u32(base + I_NTAILS, 1).unwrap();
    }
    m.write_u64(base + I_SIZE, 0).unwrap();
    m.clwb(base, 256).unwrap();
    m.sfence();
    m.write_u64(base + I_MARKER, ino).unwrap();
    m.clwb(base, 8).unwrap();
    m.sfence();
}

/// Hand-append a dentry to a directory whose tail 0 heads at `page`.
fn write_dentry(m: &pmem::Mapping, page: u64, slot: u64, name: &str, child: u64) {
    let off = page * pmem::PAGE_SIZE as u64 + DIRPAGE_FIRST_DENTRY + slot * DENTRY_SIZE;
    m.write_u64(off + D_INO, child).unwrap();
    m.write_u64(off + D_SEQ, slot + 1).unwrap();
    m.write(off + D_NAME, name.as_bytes()).unwrap();
    m.clwb(off, 128).unwrap();
    m.sfence();
    m.write_u16(off + D_MARKER, name.len() as u16).unwrap();
    m.clwb(off, 64).unwrap();
    m.sfence();
}

/// Set up: LibFS acquires the root, creates one child file "f" by hand.
/// Returns (kernel, libfs id, root mapping, child ino, tail page).
fn setup_one_child() -> (Arc<Kernel>, LibFsId, pmem::Mapping, u64, u64) {
    let k = kernel(KernelConfig::arckfs_plus());
    let geom = *k.geometry();
    let (id, _base) = k.register_libfs(0);
    let grant = k.acquire(id, ROOT_INO).unwrap();
    let m = grant.mapping;

    let child = k.grant_inodes(id, 1).unwrap()[0];
    let page = k.grant_pages(id, 1).unwrap()[0];
    // Zero the page so unwritten slots read as holes.
    m.write(page * pmem::PAGE_SIZE as u64, &vec![0u8; pmem::PAGE_SIZE])
        .unwrap();
    m.clwb(page * pmem::PAGE_SIZE as u64, pmem::PAGE_SIZE)
        .unwrap();
    m.sfence();

    write_inode(&m, &geom, child, InodeType::Regular);
    // Link the page as root's tail 0 head and add the dentry.
    let root_base = geom.inode_offset(ROOT_INO);
    m.write_u64(root_base + I_DIRECT, page).unwrap();
    m.clwb(root_base + I_DIRECT, 8).unwrap();
    m.sfence();
    write_dentry(&m, page, 0, "f", child);
    m.write_u64(root_base + I_SIZE, 1).unwrap();
    m.clwb(root_base + I_SIZE, 8).unwrap();
    m.sfence();
    (k, id, m, child, page)
}

#[test]
fn release_verifies_handwritten_state() {
    let (k, id, _m, child, _page) = setup_one_child();
    k.release(id, ROOT_INO).unwrap();
    assert_eq!(k.stats().snapshot().verify_failures, 0);
    // The child is registered with the right parent.
    let entry = k.shadow_entry(child).expect("child registered");
    assert_eq!(entry.parent, ROOT_INO);
    assert_eq!(entry.itype, InodeType::Regular);
    assert_eq!(k.verified_children(ROOT_INO).get("f"), Some(&child));
}

#[test]
fn release_unmaps_the_grant() {
    let (k, id, m, _child, _page) = setup_one_child();
    k.release(id, ROOT_INO).unwrap();
    assert!(m.read_u64(0).is_err(), "mapping must be invalidated");
    assert!(!k.owns(id, ROOT_INO));
}

#[test]
fn commit_keeps_ownership_and_mapping() {
    let (k, id, m, child, _page) = setup_one_child();
    k.commit(id, ROOT_INO).unwrap();
    assert!(k.owns(id, ROOT_INO));
    assert!(m.read_u64(0).is_ok(), "commit must not unmap");
    assert!(k.shadow_entry(child).is_some());
}

#[test]
fn corrupt_dentry_name_fails_and_rolls_back() {
    let (k, id, m, _child, page) = setup_one_child();
    k.commit(id, ROOT_INO).unwrap();
    // Corrupt the committed dentry: marker says 60 bytes, name has 1.
    let off = page * pmem::PAGE_SIZE as u64 + DIRPAGE_FIRST_DENTRY;
    m.write_u16(off + D_MARKER, 60).unwrap();
    m.sfence();
    let err = k.release(id, ROOT_INO).unwrap_err();
    assert!(matches!(err, FsError::VerificationFailed { .. }), "{err:?}");
    // Rollback restored the record.
    let d = format::read_dentry(k.device(), off).unwrap();
    assert_eq!(d.marker, 1);
    assert_eq!(d.name_str(), Some("f"));
}

#[test]
fn dentry_to_uncommitted_inode_rejected() {
    let (k, id, m, _child, page) = setup_one_child();
    // Add a second dentry pointing at an inode that was never committed.
    write_dentry(&m, page, 1, "ghost", 777);
    let root_base = k.geometry().inode_offset(ROOT_INO);
    m.write_u64(root_base + I_SIZE, 2).unwrap();
    m.sfence();
    let err = k.release(id, ROOT_INO).unwrap_err();
    match err {
        FsError::VerificationFailed { reason, .. } => {
            assert!(reason.contains("uncommitted"), "{reason}");
        }
        other => panic!("{other:?}"),
    }
}

#[test]
fn duplicate_names_rejected() {
    let (k, id, m, child, page) = setup_one_child();
    write_dentry(&m, page, 1, "f", child);
    let root_base = k.geometry().inode_offset(ROOT_INO);
    m.write_u64(root_base + I_SIZE, 2).unwrap();
    m.sfence();
    let err = k.release(id, ROOT_INO).unwrap_err();
    assert!(
        matches!(err, FsError::VerificationFailed { ref reason, .. } if reason.contains("duplicate")),
        "{err:?}"
    );
}

#[test]
fn size_mismatch_rejected() {
    let (k, id, m, _child, _page) = setup_one_child();
    let root_base = k.geometry().inode_offset(ROOT_INO);
    m.write_u64(root_base + I_SIZE, 5).unwrap();
    m.sfence();
    let err = k.release(id, ROOT_INO).unwrap_err();
    assert!(
        matches!(err, FsError::VerificationFailed { ref reason, .. } if reason.contains("size")),
        "{err:?}"
    );
}

#[test]
fn acquire_requires_read_permission() {
    let k = kernel(KernelConfig::arckfs_plus());
    let (owner, _m) = k.register_libfs(0);
    let grant = k.acquire(owner, ROOT_INO).unwrap();
    let geom = *k.geometry();

    // Hand-create a directory only uid 0 can read.
    let child = k.grant_inodes(owner, 1).unwrap()[0];
    let page = k.grant_pages(owner, 1).unwrap()[0];
    let m = grant.mapping;
    m.write(page * pmem::PAGE_SIZE as u64, &vec![0u8; pmem::PAGE_SIZE])
        .unwrap();
    let base = geom.inode_offset(child);
    m.write_u32(base + I_TYPE, InodeType::Directory.to_raw())
        .unwrap();
    m.write_u32(base + I_MODE, mode::OWNER_R | mode::OWNER_W)
        .unwrap();
    m.write_u32(base + I_UID, 0).unwrap();
    m.write_u32(base + I_NTAILS, 1).unwrap();
    m.write_u64(base + I_MARKER, child).unwrap();
    let root_base = geom.inode_offset(ROOT_INO);
    m.write_u64(root_base + I_DIRECT, page).unwrap();
    write_dentry(&m, page, 0, "private", child);
    m.write_u64(root_base + I_SIZE, 1).unwrap();
    m.sfence();
    k.release(owner, ROOT_INO).unwrap();
    k.release(owner, child).unwrap();

    let (stranger, _m2) = k.register_libfs(42);
    assert_eq!(
        k.acquire(stranger, child).unwrap_err(),
        FsError::PermissionDenied
    );
    // The owner itself may re-acquire.
    assert!(k.acquire(owner, child).is_ok());
}

#[test]
fn acquire_unknown_inode_is_not_found() {
    let k = kernel(KernelConfig::arckfs_plus());
    let (id, _m) = k.register_libfs(0);
    assert_eq!(k.acquire(id, 999).unwrap_err(), FsError::NotFound);
}

#[test]
fn double_release_is_not_owner() {
    let k = kernel(KernelConfig::arckfs_plus());
    let (id, _m) = k.register_libfs(0);
    k.acquire(id, ROOT_INO).unwrap();
    k.release(id, ROOT_INO).unwrap();
    assert!(matches!(
        k.release(id, ROOT_INO).unwrap_err(),
        FsError::NotOwner { .. }
    ));
}

#[test]
fn grants_are_disjoint_across_libfses() {
    let k = kernel(KernelConfig::arckfs_plus());
    let (a, _ma) = k.register_libfs(0);
    let (b, _mb) = k.register_libfs(0);
    let ia = k.grant_inodes(a, 100).unwrap();
    let ib = k.grant_inodes(b, 100).unwrap();
    let pa = k.grant_pages(a, 100).unwrap();
    let pb = k.grant_pages(b, 100).unwrap();
    assert!(ia.iter().all(|i| !ib.contains(i)), "inode grants overlap");
    assert!(pa.iter().all(|p| !pb.contains(p)), "page grants overlap");
}

#[test]
fn freed_inode_release_reclaims_shadow() {
    let (k, id, m, child, page) = setup_one_child();
    k.commit(id, ROOT_INO).unwrap();
    assert!(k.shadow_entry(child).is_some());
    // Tombstone the dentry and free the inode, as an unlink does.
    let off = page * pmem::PAGE_SIZE as u64 + DIRPAGE_FIRST_DENTRY;
    m.write(off + format::D_DELETED, &[1]).unwrap();
    m.write_u64(k.geometry().inode_offset(child), 0).unwrap();
    let root_base = k.geometry().inode_offset(ROOT_INO);
    m.write_u64(root_base + I_SIZE, 0).unwrap();
    m.sfence();
    k.release(id, ROOT_INO).unwrap();
    assert!(k.shadow_entry(child).is_none(), "shadow entry reclaimed");
    assert!(k.verified_children(ROOT_INO).is_empty());
}

#[test]
fn arckfs_kernel_rejects_lease_calls() {
    let k = kernel(KernelConfig::arckfs());
    let (id, _m) = k.register_libfs(0);
    assert!(matches!(
        k.rename_lease_acquire(id).unwrap_err(),
        FsError::InvalidArgument(_)
    ));
}

#[test]
fn lease_is_exclusive_between_libfses() {
    let k = kernel(KernelConfig::arckfs_plus());
    let (a, _ma) = k.register_libfs(0);
    let (b, _mb) = k.register_libfs(0);
    let t = k.rename_lease_acquire(a).unwrap();
    assert_eq!(k.rename_lease_acquire(b).unwrap_err(), FsError::Busy);
    k.rename_lease_release(a, t).unwrap();
    assert!(k.rename_lease_acquire(b).is_ok());
}

#[test]
fn page_quota_isolates_tenants_and_frees_restore_budget() {
    let k = kernel(KernelConfig::arckfs_plus().with_page_quota(Some(4)));
    let (a, _ma) = k.register_libfs(100);
    let (b, _mb) = k.register_libfs(200);

    // Oversized ask clamps to the remaining budget instead of failing.
    let pa = k.grant_pages(a, 16).unwrap();
    assert_eq!(pa.len(), 4, "grant clamps to the tenant's quota");
    let err = k.grant_pages(a, 1).unwrap_err();
    assert_eq!(
        err,
        FsError::QuotaExceeded {
            tenant: 100,
            kind: vfs::QuotaKind::Pages
        }
    );
    assert!(err.is_quota());

    // Tenant 200 is unperturbed by 100 sitting at its limit.
    let pb = k.grant_pages(b, 2).unwrap();
    assert_eq!(pb.len(), 2);
    assert_eq!(k.allocator().charged(100), 4);
    assert_eq!(k.allocator().charged(200), 2);
    assert_eq!(k.allocator().charged_tenants(), vec![(100, 4), (200, 2)]);
    assert!(k.allocator().quota_rejections() >= 1);

    // Returning pages restores the budget.
    k.return_pages(a, &pa[..2]).unwrap();
    assert_eq!(k.allocator().charged(100), 2);
    assert_eq!(k.grant_pages(a, 2).unwrap().len(), 2);
}

#[test]
fn ino_quota_enforced_per_tenant() {
    let k = kernel(KernelConfig::arckfs_plus().with_ino_quota(Some(3)));
    let (a, _ma) = k.register_libfs(100);
    let inos = k.grant_inodes(a, 8).unwrap();
    assert_eq!(inos.len(), 3, "clamped to the inode quota");
    assert_eq!(
        k.grant_inodes(a, 1).unwrap_err(),
        FsError::QuotaExceeded {
            tenant: 100,
            kind: vfs::QuotaKind::Inodes
        }
    );
    k.return_inodes(a, inos[..1].to_vec());
    assert_eq!(k.grant_inodes(a, 1).unwrap().len(), 1);
}

#[test]
fn quotas_off_pays_nothing_for_tenancy() {
    let k = kernel(KernelConfig::arckfs_plus());
    let (a, _m) = k.register_libfs(100);
    let pages = k.grant_pages(a, 8).unwrap();
    assert_eq!(pages.len(), 8);
    // Structural proof no quota wrapper is installed: the trait defaults
    // report no charge tracking at all.
    assert_eq!(k.allocator().charged(100), 0);
    assert!(k.allocator().charged_tenants().is_empty());
    assert_eq!(k.allocator().quota_limit(100), None);
    k.return_pages(a, &pages).unwrap();
}
