//! fsck over hand-corrupted device images: every fatal classification has
//! a positive test, and benign residue is never escalated.

use std::sync::Arc;

use pmem::{PmemDevice, PAGE_SIZE};
use trio::format::{
    Geometry, InodeType, DENTRY_SIZE, DIRPAGE_FIRST_DENTRY, D_DELETED, D_INO, D_MARKER, D_NAME,
    D_SEQ, I_DIRECT, I_MARKER, I_MODE, I_NTAILS, I_SIZE, I_TYPE,
};
use trio::fsck::{fsck, FsckIssue};
use trio::{Kernel, KernelConfig, ROOT_INO};

const DEV: usize = 16 << 20;

struct Image {
    dev: Arc<PmemDevice>,
    geom: Geometry,
    next_page: u64,
}

impl Image {
    fn new() -> Image {
        let dev = PmemDevice::new(DEV);
        let geom = Geometry::for_device(DEV);
        Kernel::format(dev.clone(), geom, KernelConfig::arckfs_plus()).unwrap();
        let next_page = geom.data_start_page + 100; // clear of allocator grants
        Image {
            dev,
            geom,
            next_page,
        }
    }

    fn page(&mut self) -> u64 {
        // Mark allocated in the bitmap so structural checks pass.
        let p = self.next_page;
        self.next_page += 1;
        let idx = p - self.geom.data_start_page;
        let off = self.geom.bitmap_offset() + idx / 8;
        let b = self.dev.read_u8(off).unwrap();
        self.dev.write_u8(off, b | (1 << (idx % 8))).unwrap();
        p
    }

    fn inode(&self, ino: u64, itype: InodeType, tail_page: u64) {
        let base = self.geom.inode_offset(ino);
        self.dev.write_u32(base + I_TYPE, itype.to_raw()).unwrap();
        self.dev.write_u32(base + I_MODE, 0o666).unwrap();
        if itype == InodeType::Directory {
            self.dev.write_u32(base + I_NTAILS, 1).unwrap();
            self.dev.write_u64(base + I_DIRECT, tail_page).unwrap();
        }
        self.dev.write_u64(base + I_MARKER, ino).unwrap();
    }

    fn dentry(&self, page: u64, slot: u64, name: &str, ino: u64, seq: u64, deleted: bool) {
        let off = page * PAGE_SIZE as u64 + DIRPAGE_FIRST_DENTRY + slot * DENTRY_SIZE;
        self.dev.write_u64(off + D_INO, ino).unwrap();
        self.dev.write_u64(off + D_SEQ, seq).unwrap();
        self.dev.write(off + D_NAME, name.as_bytes()).unwrap();
        self.dev.write(off + D_DELETED, &[deleted as u8]).unwrap();
        self.dev
            .write_u16(off + D_MARKER, name.len() as u16)
            .unwrap();
    }

    fn set_root_tail(&self, page: u64, live: u64) {
        let base = self.geom.inode_offset(ROOT_INO);
        self.dev.write_u64(base + I_DIRECT, page).unwrap();
        self.dev.write_u64(base + I_SIZE, live).unwrap();
    }

    fn report(&self) -> trio::fsck::FsckReport {
        self.dev.persist_all();
        fsck(&self.dev).unwrap()
    }
}

#[test]
fn same_dir_rename_residue_is_benign() {
    let mut img = Image::new();
    let p = img.page();
    img.inode(7, InodeType::Regular, 0);
    // Old name (seq 1) and new name (seq 2), tombstone lost in the crash.
    img.dentry(p, 0, "old-name", 7, 1, false);
    img.dentry(p, 1, "new-name", 7, 2, false);
    img.set_root_tail(p, 1);
    let r = img.report();
    assert!(r.is_consistent(), "{:?}", r.issues);
    assert!(r
        .issues
        .iter()
        .any(|i| matches!(i, FsckIssue::RenameResidue { ino: 7, .. })));
}

#[test]
fn cross_dir_double_reference_is_fatal() {
    let mut img = Image::new();
    let (p_root, p_a) = (img.page(), img.page());
    img.inode(5, InodeType::Directory, p_a); // /a
    img.inode(7, InodeType::Regular, 0); // the doubly-linked file
    img.dentry(p_root, 0, "a", 5, 1, false);
    img.dentry(p_root, 1, "f", 7, 2, false);
    img.set_root_tail(p_root, 2);
    let a_base = img.geom.inode_offset(5);
    img.dev.write_u64(a_base + I_SIZE, 1).unwrap();
    img.dentry(p_a, 0, "also-f", 7, 1, false);
    let r = img.report();
    assert!(!r.is_consistent());
    assert!(r
        .issues
        .iter()
        .any(|i| matches!(i, FsckIssue::MultiplyReachable { ino: 7 })));
}

#[test]
fn duplicate_names_are_fatal() {
    let mut img = Image::new();
    let p = img.page();
    img.inode(7, InodeType::Regular, 0);
    img.inode(8, InodeType::Regular, 0);
    img.dentry(p, 0, "same", 7, 1, false);
    img.dentry(p, 1, "same", 8, 2, false);
    img.set_root_tail(p, 2);
    let r = img.report();
    assert!(!r.is_consistent());
    assert!(r
        .issues
        .iter()
        .any(|i| matches!(i, FsckIssue::DuplicateName { .. })));
}

#[test]
fn bad_type_tag_is_fatal() {
    let mut img = Image::new();
    let p = img.page();
    let base = img.geom.inode_offset(9);
    img.dev.write_u32(base + I_TYPE, 99).unwrap();
    img.dev.write_u64(base + I_MARKER, 9).unwrap();
    img.dentry(p, 0, "weird", 9, 1, false);
    img.set_root_tail(p, 1);
    let r = img.report();
    assert!(!r.is_consistent());
    assert!(r
        .issues
        .iter()
        .any(|i| matches!(i, FsckIssue::BadType { ino: 9, raw: 99 })));
}

#[test]
fn tombstoned_records_are_invisible() {
    let mut img = Image::new();
    let p = img.page();
    img.inode(7, InodeType::Regular, 0);
    img.dentry(p, 0, "gone", 7, 1, true);
    img.set_root_tail(p, 0);
    // Dentry tombstoned but inode still committed: just an orphan.
    let r = img.report();
    assert!(r.is_consistent(), "{:?}", r.issues);
    assert!(r
        .issues
        .iter()
        .any(|i| matches!(i, FsckIssue::OrphanInode { ino: 7 })));
}

#[test]
fn stale_size_field_is_benign() {
    let mut img = Image::new();
    let p = img.page();
    img.inode(7, InodeType::Regular, 0);
    img.dentry(p, 0, "f", 7, 1, false);
    img.set_root_tail(p, 3); // wrong count
    let r = img.report();
    assert!(r.is_consistent(), "{:?}", r.issues);
    assert!(r.issues.iter().any(|i| matches!(
        i,
        FsckIssue::SizeMismatch {
            recorded: 3,
            actual: 1,
            ..
        }
    )));
}

#[test]
fn dir_log_page_cycle_is_fatal() {
    let mut img = Image::new();
    let p = img.page();
    // The page links to itself.
    img.dev.write_u64(p * PAGE_SIZE as u64, p).unwrap();
    img.set_root_tail(p, 0);
    let r = img.report();
    assert!(!r.is_consistent());
    assert!(r
        .issues
        .iter()
        .any(|i| matches!(i, FsckIssue::Structural { .. })));
}

#[test]
fn repair_cleans_every_benign_class() {
    use trio::fsck::repair;
    let mut img = Image::new();
    let p = img.page();
    // Rename residue for inode 7, a stale size, and an orphan inode 9.
    img.inode(7, InodeType::Regular, 0);
    img.dentry(p, 0, "old", 7, 1, false);
    img.dentry(p, 1, "new", 7, 2, false);
    img.set_root_tail(p, 5); // wrong size too
    img.inode(9, InodeType::Regular, 0); // orphan
    img.dev.persist_all();

    let before = fsck(&img.dev).unwrap();
    assert!(before.is_consistent());
    assert!(before.issues.len() >= 3, "{:?}", before.issues);

    let after = repair(&img.dev).unwrap();
    assert!(
        after.issues.is_empty(),
        "repair must clean residue: {:?}",
        after.issues
    );

    // The winner of the rename residue survived; the loser is gone.
    let root = trio::format::read_inode(&img.dev, &img.geom, ROOT_INO).unwrap();
    let mut names = Vec::new();
    trio::format::walk_dir_log(&img.dev, &img.geom, &root, |d| {
        if d.is_live() {
            names.push(d.name_str().unwrap().to_string());
        }
    })
    .unwrap();
    assert_eq!(names, vec!["new"]);
    assert_eq!(root.size, 1, "size rewritten");
    // The orphan's number is free again.
    assert_eq!(img.dev.read_u64(img.geom.inode_offset(9)).unwrap(), 0);
}

#[test]
fn repair_leaves_fatal_issues_alone() {
    use trio::fsck::repair;
    let mut img = Image::new();
    let p = img.page();
    img.dentry(p, 0, "ghost", 777, 1, false); // dangling: fatal
    img.set_root_tail(p, 1);
    img.dev.persist_all();
    let after = repair(&img.dev).unwrap();
    assert!(!after.is_consistent());
    assert!(after
        .issues
        .iter()
        .any(|i| matches!(i, FsckIssue::DanglingDentry { .. })));
}
