//! Reproduction of *"Analyzing and Enhancing ArckFS: An Anecdotal Example
//! of Benefits of Artifact Evaluation"* (SOSP 2025).
//!
//! This umbrella crate re-exports the workspace pieces so the integration
//! tests (`tests/`) and example binaries (`examples/`) have one import
//! root. See `README.md` for the tour and `DESIGN.md` for the system
//! inventory and experiment index.
//!
//! * [`arckfs`] — the LibFS (ArckFS and ArckFS+, per-bug toggleable).
//! * [`trio`] — the kernel substrate: controller, verifier, shadow table,
//!   rename lease, trust groups, fsck.
//! * [`pmem`] — the persistent-memory emulator (flush/fence semantics,
//!   crash-state sampling).
//! * [`rcu`] — epoch-based RCU and the generation-tagged arena.
//! * [`kernelfs`] — baseline kernel-file-system models.
//! * [`crashmc`] — the crash-consistency checker.
//! * [`fxmark`], [`filebench`], [`kvstore`], [`model`] — workloads and the
//!   scalability model behind the benchmark harness.
//! * [`obs`] — operation-level tracing: per-op spans attributing
//!   `PmemStats` deltas and latency histograms, exported as JSON.

pub use arckfs;
pub use crashmc;
pub use filebench;
pub use fxmark;
pub use kernelfs;
pub use kvstore;
pub use model;
pub use obs;
pub use pmem;
pub use rcu;
pub use trio;
pub use vfs;
